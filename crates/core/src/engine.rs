//! Multi-building batch execution engine.
//!
//! [`FisEngine`] runs the FIS-ONE pipeline over a whole corpus
//! ([`fis_types::Dataset`]) with buildings dispatched concurrently across
//! a configurable thread budget. Each building is an independent unit of
//! work with its own seeded RNG, so predictions are **bit-identical for
//! any thread count** — parallelism only changes wall-clock time, never
//! results (see the determinism tests in `tests/engine_determinism.rs`).
//!
//! ```no_run
//! use fis_core::{EngineConfig, FisEngine};
//! # fn corpus() -> fis_types::Dataset { unimplemented!() }
//!
//! let engine = FisEngine::new(EngineConfig::default().threads(8));
//! let report = engine.evaluate_corpus(&corpus());
//! println!(
//!     "{} buildings in {:?} ({} ok)",
//!     report.runs.len(),
//!     report.wall,
//!     report.successes().count()
//! );
//! ```

use std::time::{Duration, Instant};

use fis_types::{Building, Dataset};

use crate::error::FisError;
use crate::evaluate::{mean_result, score_prediction, EvalResult};
use crate::model::FittedModel;
use crate::pipeline::{FisOne, FisOneConfig, FloorPrediction};

/// Configuration of the batch engine.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Per-building pipeline configuration (seed included).
    pub pipeline: FisOneConfig,
    /// Worker thread budget for dispatching buildings; `0` (the default)
    /// uses the global [`fis_parallel::thread_budget`].
    pub threads: usize,
}

impl EngineConfig {
    /// Sets the pipeline configuration.
    pub fn pipeline(mut self, pipeline: FisOneConfig) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Sets the thread budget (`0` = use the global budget).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the RNG seed on the embedded pipeline config.
    pub fn seed(mut self, seed: u64) -> Self {
        self.pipeline = self.pipeline.seed(seed);
        self
    }
}

/// Result of running one building through the engine.
#[derive(Debug, Clone)]
pub struct BuildingRun {
    /// The building's name.
    pub building: String,
    /// Number of floors in the building.
    pub floors: usize,
    /// Number of samples in the building.
    pub samples: usize,
    /// Prediction (and, for evaluation runs, scores), or the pipeline
    /// error for this building. One failing building never aborts the
    /// rest of the batch.
    pub outcome: Result<BuildingOutcome, FisError>,
    /// Wall-clock time spent on this building.
    pub elapsed: Duration,
}

/// Successful per-building artifacts.
#[derive(Debug, Clone)]
pub struct BuildingOutcome {
    /// Floor prediction for every sample.
    pub prediction: FloorPrediction,
    /// ARI / NMI / edit scores against ground truth; `None` for
    /// identify-only runs.
    pub eval: Option<EvalResult>,
}

/// Result of a whole-corpus run.
#[derive(Debug, Clone)]
pub struct CorpusRun {
    /// Per-building results, in corpus order.
    pub runs: Vec<BuildingRun>,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
    /// Thread budget the batch actually used.
    pub threads: usize,
}

impl CorpusRun {
    /// Iterates over buildings that completed successfully.
    pub fn successes(&self) -> impl Iterator<Item = (&BuildingRun, &BuildingOutcome)> {
        self.runs
            .iter()
            .filter_map(|r| r.outcome.as_ref().ok().map(|o| (r, o)))
    }

    /// Iterates over buildings that failed, with their errors.
    pub fn failures(&self) -> impl Iterator<Item = (&BuildingRun, &FisError)> {
        self.runs
            .iter()
            .filter_map(|r| r.outcome.as_ref().err().map(|e| (r, e)))
    }

    /// Mean ARI / NMI / edit over all scored buildings.
    pub fn mean_eval(&self) -> EvalResult {
        let scores: Vec<EvalResult> = self.successes().filter_map(|(_, o)| o.eval).collect();
        mean_result(&scores)
    }

    /// Sum of per-building times — the serial cost the parallel batch
    /// avoided; `speedup ≈ cpu_time / wall`.
    pub fn cpu_time(&self) -> Duration {
        self.runs.iter().map(|r| r.elapsed).sum()
    }
}

/// Result of fitting one building into a serving artifact.
#[derive(Debug)]
pub struct BuildingFit {
    /// The building's name.
    pub building: String,
    /// Number of floors in the building.
    pub floors: usize,
    /// Number of training scans.
    pub samples: usize,
    /// The fitted model, or the pipeline error. One failing building
    /// never aborts the rest of the batch.
    pub outcome: Result<FittedModel, FisError>,
    /// Wall-clock time spent fitting this building.
    pub elapsed: Duration,
}

/// Result of fitting a whole corpus.
#[derive(Debug)]
pub struct CorpusFit {
    /// Per-building fits, in corpus order.
    pub fits: Vec<BuildingFit>,
    /// Wall-clock time for the whole batch.
    pub wall: Duration,
    /// Thread budget the batch actually used.
    pub threads: usize,
}

impl CorpusFit {
    /// Iterates over buildings that fitted successfully.
    pub fn successes(&self) -> impl Iterator<Item = (&BuildingFit, &FittedModel)> {
        self.fits
            .iter()
            .filter_map(|f| f.outcome.as_ref().ok().map(|m| (f, m)))
    }

    /// Iterates over buildings that failed to fit, with their errors.
    pub fn failures(&self) -> impl Iterator<Item = (&BuildingFit, &FisError)> {
        self.fits
            .iter()
            .filter_map(|f| f.outcome.as_ref().err().map(|e| (f, e)))
    }
}

/// Batch engine running [`FisOne`] over whole corpora in parallel.
///
/// See the [module docs](self) for the determinism contract.
#[derive(Debug, Clone, Default)]
pub struct FisEngine {
    config: EngineConfig,
}

impl FisEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Self { config }
    }

    /// Convenience constructor from a pipeline config alone.
    pub fn with_pipeline(pipeline: FisOneConfig) -> Self {
        Self::new(EngineConfig::default().pipeline(pipeline))
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The resolved worker budget for this engine.
    pub fn threads(&self) -> usize {
        match self.config.threads {
            0 => fis_parallel::thread_budget(),
            n => n,
        }
    }

    /// Runs `identify` (bottom-floor anchor) on every building
    /// concurrently, without scoring.
    pub fn identify_corpus(&self, corpus: &Dataset) -> CorpusRun {
        self.run(corpus, false)
    }

    /// Runs the pipeline on every building concurrently and scores each
    /// against its ground truth.
    pub fn evaluate_corpus(&self, corpus: &Dataset) -> CorpusRun {
        self.run(corpus, true)
    }

    /// Fits every building of the corpus into a [`FittedModel`]
    /// concurrently — the batch entry point of the fit-once /
    /// serve-forever path (see [`crate::model`]).
    pub fn fit_corpus(&self, corpus: &Dataset) -> CorpusFit {
        let threads = self.threads();
        let started = Instant::now();
        let _budget_guard =
            (self.config.threads != 0).then(|| BudgetGuard::set(self.config.threads));
        let fits = fis_parallel::par_map(corpus.buildings(), 1, |_, building| {
            let fit_started = Instant::now();
            let fis = FisOne::new(self.config.pipeline.clone());
            let outcome = bottom_anchor_or_err(building).and_then(|anchor| {
                fis.fit(
                    building.name(),
                    building.samples(),
                    building.floors(),
                    anchor,
                )
            });
            BuildingFit {
                building: building.name().to_owned(),
                floors: building.floors(),
                samples: building.len(),
                outcome,
                elapsed: fit_started.elapsed(),
            }
        });
        CorpusFit {
            fits,
            wall: started.elapsed(),
            threads,
        }
    }

    fn run(&self, corpus: &Dataset, score: bool) -> CorpusRun {
        let threads = self.threads();
        let started = Instant::now();
        // An explicit per-engine budget is applied through the process
        // global, so serialize explicit-budget batches against each
        // other and restore on drop (panic-safe).
        let _budget_guard =
            (self.config.threads != 0).then(|| BudgetGuard::set(self.config.threads));
        // One building per work item; each builds its own FisOne (and
        // therefore its own seeded RNG), so results do not depend on
        // which worker runs which building.
        let runs = fis_parallel::par_map(corpus.buildings(), 1, |_, building| {
            self.run_building(building, score)
        });
        CorpusRun {
            runs,
            wall: started.elapsed(),
            threads,
        }
    }

    fn run_building(&self, building: &Building, score: bool) -> BuildingRun {
        let started = Instant::now();
        let fis = FisOne::new(self.config.pipeline.clone());
        let outcome = if score {
            evaluate_with_prediction(&fis, building)
        } else {
            bottom_anchor_or_err(building)
                .and_then(|anchor| fis.identify(building.samples(), building.floors(), anchor))
                .map(|prediction| BuildingOutcome {
                    prediction,
                    eval: None,
                })
        };
        BuildingRun {
            building: building.name().to_owned(),
            floors: building.floors(),
            samples: building.len(),
            outcome,
            elapsed: started.elapsed(),
        }
    }
}

/// The building's single labeled anchor, or the engine's canonical error
/// when the bottom floor was never surveyed (shared by the identify and
/// fit batch paths so both report identically).
fn bottom_anchor_or_err(building: &Building) -> Result<fis_types::LabeledAnchor, FisError> {
    building.bottom_anchor().ok_or_else(|| {
        FisError::Anchor(format!(
            "building {} has no sample on the bottom floor",
            building.name()
        ))
    })
}

/// RAII override of the global thread budget: holds a process-wide lock
/// so two explicit-budget engines cannot clobber each other, and
/// restores the previous override even if a building panics.
pub(crate) struct BudgetGuard {
    previous: usize,
    _lock: std::sync::MutexGuard<'static, ()>,
}

impl BudgetGuard {
    pub(crate) fn set(threads: usize) -> Self {
        static BUDGET_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let lock = BUDGET_LOCK
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let previous = fis_parallel::thread_budget_override();
        fis_parallel::set_thread_budget(threads);
        Self {
            previous,
            _lock: lock,
        }
    }
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        fis_parallel::set_thread_budget(self.previous);
    }
}

fn evaluate_with_prediction(
    fis: &FisOne,
    building: &Building,
) -> Result<BuildingOutcome, FisError> {
    let anchor = building.bottom_anchor().ok_or_else(|| {
        FisError::Evaluation(format!(
            "building {} has no sample on the bottom floor",
            building.name()
        ))
    })?;
    let prediction = fis.identify(building.samples(), building.floors(), anchor)?;
    let eval = score_prediction(&prediction, building)?;
    Ok(BuildingOutcome {
        prediction,
        eval: Some(eval),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::FisOneConfig;
    use fis_gnn::RfGnnConfig;
    use fis_synth::BuildingConfig;
    use fis_types::Dataset;

    fn quick_config(seed: u64) -> FisOneConfig {
        let mut config = FisOneConfig::default().seed(seed);
        config.gnn = RfGnnConfig::new(8)
            .epochs(3)
            .walks_per_node(2)
            .neighbor_samples(vec![5, 3])
            .seed(seed);
        config
    }

    fn tiny_corpus() -> Dataset {
        let buildings = (0..3)
            .map(|i| {
                BuildingConfig::new(format!("b{i}"), 3)
                    .samples_per_floor(20)
                    .aps_per_floor(8)
                    .atrium_aps(0)
                    .seed(100 + i as u64)
                    .generate()
            })
            .collect();
        Dataset::new("tiny", buildings)
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FisEngine>();
        assert_send_sync::<CorpusRun>();
    }

    #[test]
    fn evaluate_corpus_scores_every_building() {
        let corpus = tiny_corpus();
        let engine = FisEngine::new(EngineConfig::default().pipeline(quick_config(1)));
        let report = engine.evaluate_corpus(&corpus);
        assert_eq!(report.runs.len(), 3);
        assert_eq!(report.successes().count(), 3);
        for (run, outcome) in report.successes() {
            assert_eq!(outcome.prediction.labels().len(), run.samples);
            assert!(outcome.eval.is_some());
        }
        let mean = report.mean_eval();
        assert!(mean.ari > 0.0, "mean ari {}", mean.ari);
    }

    #[test]
    fn identify_corpus_skips_scoring() {
        let corpus = tiny_corpus();
        let engine = FisEngine::new(EngineConfig::default().pipeline(quick_config(2)));
        let report = engine.identify_corpus(&corpus);
        assert_eq!(report.successes().count(), 3);
        assert!(report.successes().all(|(_, o)| o.eval.is_none()));
    }

    #[test]
    fn one_bad_building_does_not_poison_the_batch() {
        let mut corpus = tiny_corpus();
        // Two samples cannot form three clusters -> this building fails.
        let sample = |id: u32| {
            fis_types::SignalSample::builder(id)
                .reading(
                    fis_types::MacAddr::from_u64(u64::from(id) + 1),
                    fis_types::Rssi::new(-50.0).unwrap(),
                )
                .build()
        };
        let cramped = fis_types::Building::new(
            "cramped",
            3,
            vec![sample(0), sample(1)],
            vec![
                fis_types::FloorId::BOTTOM,
                fis_types::FloorId::from_index(1),
            ],
        )
        .unwrap();
        corpus.push(cramped);
        let engine = FisEngine::new(EngineConfig::default().pipeline(quick_config(3)));
        let report = engine.evaluate_corpus(&corpus);
        assert_eq!(report.runs.len(), 4);
        assert_eq!(report.successes().count(), 3);
        assert_eq!(report.failures().count(), 1);
        assert_eq!(report.failures().next().unwrap().0.building, "cramped");
    }

    #[test]
    fn explicit_thread_budget_is_restored() {
        let corpus = tiny_corpus();
        let before = fis_parallel::thread_budget();
        let engine = FisEngine::new(EngineConfig::default().pipeline(quick_config(4)).threads(2));
        assert_eq!(engine.threads(), 2);
        let _ = engine.evaluate_corpus(&corpus);
        assert_eq!(fis_parallel::thread_budget(), before);
    }

    #[test]
    fn fit_corpus_fits_every_building() {
        let corpus = tiny_corpus();
        let engine = FisEngine::new(EngineConfig::default().pipeline(quick_config(6)));
        let fit = engine.fit_corpus(&corpus);
        assert_eq!(fit.fits.len(), 3);
        assert_eq!(fit.successes().count(), 3);
        for (run, model) in fit.successes() {
            assert_eq!(model.building(), run.building);
            assert_eq!(model.floors(), run.floors);
            assert_eq!(model.training_labels().len(), run.samples);
        }
        // Fitted labels agree with the identify path at the same seed.
        let report = engine.identify_corpus(&corpus);
        for ((_, model), (_, outcome)) in fit.successes().zip(report.successes()) {
            assert_eq!(model.training_labels(), outcome.prediction.labels());
        }
    }

    #[test]
    fn corpus_run_accounting_is_consistent() {
        let corpus = tiny_corpus();
        let engine = FisEngine::new(EngineConfig::default().pipeline(quick_config(5)));
        let report = engine.evaluate_corpus(&corpus);
        assert!(report.cpu_time() >= report.runs.iter().map(|r| r.elapsed).max().unwrap());
        assert!(report.threads >= 1);
        for run in &report.runs {
            assert!(run.floors > 0 && run.samples > 0);
        }
    }
}
