//! Model extensions beyond the fixed-anchor pipeline: the §VI
//! arbitrary-anchor variant, and *online* extension of a fitted model.
//!
//! # Arbitrary anchor (§VI)
//!
//! With no fixed starting cluster, the TSP is solved from every start and
//! the minimum-cost ordering kept. The anchor's disclosed floor then pins
//! the orientation: its floor corresponds to two candidate path positions
//! (one from each end), and the anchor joins whichever candidate cluster
//! its embedding is closer to (Case 2). When the building has an odd
//! number of floors and the anchor sits exactly in the middle, both
//! candidates coincide positionally and the orientation is undecidable
//! (Case 1) — reported as [`ArbitraryAnchorOutcome::Ambiguous`].
//!
//! # Online extension (drift)
//!
//! [`crate::model::FittedModel::extend`] appends freshly served scans as
//! new reference points and grows the MAC vocabulary *without retraining
//! the encoder* — the serving-side answer to AP churn and renovations.
//! The mechanism lives here as `ExtendedState` (crate-private) plus the
//! public [`ExtensionReport`]:
//!
//! - The **base model is frozen**. Its graph, feature matrix, references,
//!   and VP-tree are untouched, and any scan whose known MACs all belong
//!   to the base vocabulary is answered by exactly the base code path —
//!   which is what makes old-vocabulary answers bit-identical before and
//!   after an extension (appending samples to the shared graph would shift
//!   every MAC node index and perturb neighbor sampling otherwise).
//! - Scans that hear at least one *extension-only* MAC take the extended
//!   path: a second bipartite graph over base + extension scans, the same
//!   trained weights over a feature matrix grown with synthesized rows
//!   (an extension scan's feature is the f(RSS)-weighted mean of its base
//!   MAC features; a new MAC's feature is the weighted mean of the scans
//!   attached to it), and a second VP-tree over every reference re-embedded
//!   in that space. All of it is a pure deterministic function of
//!   `(base model, extension scans)`, so artifacts stay byte-identical
//!   across save → load → save.

use std::collections::HashMap;

use fis_gnn::RfGnn;
use fis_graph::BipartiteGraph;
use fis_linalg::Matrix;
use fis_types::{FloorId, LabeledAnchor, MacAddr, SignalSample};

use crate::error::FisError;
use crate::indexing::solve_path;
use crate::model::{known_neighbors, scan_seed};
use crate::nn::VpTree;
use crate::pipeline::{FisOne, FloorPrediction};
use crate::similarity::{similarity_matrix, ClusterMacProfile};

/// Result of arbitrary-anchor identification.
#[derive(Debug, Clone, PartialEq)]
pub enum ArbitraryAnchorOutcome {
    /// Orientation was determined; per-sample labels are available.
    Resolved(FloorPrediction),
    /// Case 1: the anchor is on the middle floor of an odd building, so
    /// the ordering cannot be oriented. The unoriented cluster order and
    /// the assignment (anchor excluded, `usize::MAX` in its slot) are
    /// returned for inspection.
    Ambiguous {
        /// Clusters along the optimal (unoriented) path.
        order: Vec<usize>,
        /// Cluster per sample; the anchor's slot holds `usize::MAX`.
        assignment: Vec<usize>,
    },
}

/// Runs the §VI pipeline: cluster without the anchor, solve the TSP from
/// every start, pick the max-similarity ordering, and orient it with the
/// anchor's disclosed floor.
///
/// # Errors
///
/// Returns a [`FisError`] if any underlying stage fails or the anchor is
/// inconsistent with the inputs.
pub fn identify_with_arbitrary_anchor(
    fis: &FisOne,
    samples: &[SignalSample],
    floors: usize,
    anchor: LabeledAnchor,
) -> Result<ArbitraryAnchorOutcome, FisError> {
    if anchor.sample.index() >= samples.len() {
        return Err(FisError::Anchor(format!(
            "anchor sample {} out of bounds ({} samples)",
            anchor.sample,
            samples.len()
        )));
    }
    if anchor.floor.index() >= floors {
        return Err(FisError::Anchor(format!(
            "anchor floor {} exceeds {floors} floors",
            anchor.floor
        )));
    }
    if samples.len() < floors + 1 {
        return Err(FisError::Clustering(format!(
            "{} samples cannot form {floors} clusters plus a held-out anchor",
            samples.len()
        )));
    }

    // Stage 1-2 on ALL samples (the anchor's representation is obtained,
    // §VI), then the anchor is withheld from clustering.
    let embeddings = fis.embed(samples)?;
    let anchor_idx = anchor.sample.index();
    let others: Vec<usize> = (0..samples.len()).filter(|&i| i != anchor_idx).collect();
    let other_embeddings = embeddings.gather_rows(&others);
    let other_assignment = fis.cluster_embeddings(&other_embeddings, floors)?;

    // Expand to a full-length assignment with the anchor missing.
    let mut assignment = vec![usize::MAX; samples.len()];
    for (pos, &orig) in others.iter().enumerate() {
        assignment[orig] = other_assignment[pos];
    }

    // Similarity over the anchor-free clusters.
    let other_samples: Vec<SignalSample> = others.iter().map(|&i| samples[i].clone()).collect();
    let profiles = ClusterMacProfile::from_assignment(&other_samples, &other_assignment, floors);
    let sim = similarity_matrix(fis.config().similarity, &profiles);

    // No fixed start: evaluate all starting clusters, keep the cheapest
    // (= maximum sum of adapted Jaccard coefficients).
    let mut best: Option<fis_tsp::PathSolution> = None;
    for start in 0..floors {
        let sol = solve_path(&sim, start, fis.config().solver)?;
        if best.as_ref().is_none_or(|b| sol.cost < b.cost) {
            best = Some(sol);
        }
    }
    let path = best.expect("at least one start");

    // Candidate positions for the anchor's floor, one from each end.
    let f = anchor.floor.index();
    let p_forward = f;
    let p_backward = floors - 1 - f;
    if p_forward == p_backward {
        // Case 1: middle floor of an odd building.
        return Ok(ArbitraryAnchorOutcome::Ambiguous {
            order: path.order,
            assignment,
        });
    }

    // Case 2: the anchor joins the closer candidate cluster by mean
    // embedding distance d(r, C_i) = Σ ||r' − r|| / |C_i|.
    let c_forward = path.order[p_forward];
    let c_backward = path.order[p_backward];
    let d_forward = mean_distance(&embeddings, anchor_idx, &assignment, c_forward);
    let d_backward = mean_distance(&embeddings, anchor_idx, &assignment, c_backward);

    let (anchor_cluster, orientation_forward) = if d_forward <= d_backward {
        (c_forward, true)
    } else {
        (c_backward, false)
    };
    assignment[anchor_idx] = anchor_cluster;

    let floor_of_cluster: Vec<usize> = {
        let mut fc = vec![0usize; floors];
        for (pos, &cluster) in path.order.iter().enumerate() {
            fc[cluster] = if orientation_forward {
                pos
            } else {
                floors - 1 - pos
            };
        }
        fc
    };
    let order: Vec<usize> = if orientation_forward {
        path.order
    } else {
        path.order.into_iter().rev().collect()
    };
    Ok(ArbitraryAnchorOutcome::Resolved(FloorPrediction::new(
        assignment,
        order,
        floor_of_cluster,
    )))
}

/// Mean Euclidean distance from the embedding of `target` to the members
/// of `cluster` (§VI's `d(r, C_i)`), `+inf` for an empty cluster.
fn mean_distance(embeddings: &Matrix, target: usize, assignment: &[usize], cluster: usize) -> f64 {
    let r = embeddings.row(target);
    let mut sum = 0.0;
    let mut count = 0usize;
    for (i, &c) in assignment.iter().enumerate() {
        if c == cluster && i != target {
            sum += fis_linalg::vec_ops::euclidean(embeddings.row(i), r);
            count += 1;
        }
    }
    if count == 0 {
        f64::INFINITY
    } else {
        sum / count as f64
    }
}

/// Convenience: did the outcome resolve, and if so with which labels?
impl ArbitraryAnchorOutcome {
    /// The prediction, if orientation was determined.
    pub fn prediction(&self) -> Option<&FloorPrediction> {
        match self {
            ArbitraryAnchorOutcome::Resolved(p) => Some(p),
            ArbitraryAnchorOutcome::Ambiguous { .. } => None,
        }
    }

    /// Predicted floor labels, if resolved.
    pub fn labels(&self) -> Option<&[FloorId]> {
        self.prediction().map(FloorPrediction::labels)
    }
}

/// What [`crate::model::FittedModel::extend`] did; see the
/// [module docs](self) for the mechanism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtensionReport {
    /// Scans appended as new reference points in this call.
    pub appended: usize,
    /// Scans skipped because they share no MAC with the base vocabulary
    /// (nothing to anchor their synthesized features or label to).
    pub skipped: usize,
    /// MACs the *whole* extension added beyond the base vocabulary
    /// (cumulative across repeated `extend` calls).
    pub new_macs: usize,
    /// Reference scans the model now holds (base survey + extension).
    pub total_scans: usize,
    /// MAC vocabulary size the model now recognizes.
    pub total_macs: usize,
    /// Floor label handed to each newly appended scan, as counts per
    /// floor index.
    pub floor_counts: Vec<usize>,
}

/// The extended-path state riding alongside a frozen base model:
/// extension scans, their labels, and everything derived from them.
/// Only `samples`, `assignment`, and `references` are persisted; the
/// rest rebuilds deterministically (see [`build_extended_state`]).
#[derive(Debug, Clone)]
pub(crate) struct ExtendedState {
    /// Extension scans, ids continuing the base sample numbering.
    pub(crate) samples: Vec<SignalSample>,
    /// Cluster per extension scan (self-labeled at extend time).
    pub(crate) assignment: Vec<usize>,
    /// Extended-space embeddings of *every* reference scan
    /// (base + extension), in unified sample order.
    pub(crate) references: Vec<Vec<f64>>,
    /// Bipartite graph over base + extension scans.
    pub(crate) graph: BipartiteGraph,
    /// The base encoder's weights over the grown feature matrix.
    pub(crate) gnn: RfGnn,
    /// Full (base + new) MAC → interned index lookup.
    pub(crate) mac_index: HashMap<MacAddr, usize>,
    /// MACs interned beyond the base vocabulary.
    pub(crate) n_new_macs: usize,
    /// Exact 1-NN index over `references` (empty scans excluded).
    pub(crate) nn: VpTree,
}

/// Builds (or revalidates, when `stored_references` comes from an
/// artifact) the extended-path state. Pure in its inputs: called with the
/// same base model and extension scans it produces bit-identical state,
/// which is what keeps extended artifacts byte-stable across
/// save → load → save.
///
/// # Errors
///
/// Returns [`FisError::Model`] when the extension scans cannot rebuild a
/// graph (non-dense ids), reorder the base vocabulary, hear no MAC, share
/// no MAC with the base vocabulary, or the stored references have the
/// wrong shape; [`FisError::Inference`] if re-embedding fails.
pub(crate) fn build_extended_state(
    base_samples: &[SignalSample],
    base_macs: &[MacAddr],
    base_gnn: &RfGnn,
    seed: u64,
    ext_samples: Vec<SignalSample>,
    ext_assignment: Vec<usize>,
    stored_references: Option<Vec<Vec<f64>>>,
) -> Result<ExtendedState, FisError> {
    debug_assert_eq!(ext_samples.len(), ext_assignment.len());
    if let Some(empty) = ext_samples.iter().find(|s| s.is_empty()) {
        return Err(FisError::Model(format!(
            "extension scan {} heard no MAC",
            empty.id()
        )));
    }

    let mut combined: Vec<SignalSample> = base_samples.to_vec();
    combined.extend(ext_samples.iter().cloned());
    let graph = BipartiteGraph::from_samples(&combined)
        .map_err(|e| FisError::Model(format!("extension scans do not rebuild a graph: {e}")))?;
    // Base samples come first, so interning must reproduce the base
    // vocabulary as a prefix; anything else means the inputs are not the
    // model's own samples.
    if graph.n_macs() < base_macs.len() || &graph.macs()[..base_macs.len()] != base_macs {
        return Err(FisError::Model(
            "extension scans do not preserve the base MAC vocabulary prefix".into(),
        ));
    }
    let n_new_macs = graph.n_macs() - base_macs.len();

    let d = base_gnn.dim();
    let n_samples = combined.len();
    let n_base = base_samples.len();
    let base_feats = base_gnn.features();
    let mut data = vec![0.0; graph.n_nodes() * d];
    // Base rows keep their trained features; only the node *indices* move
    // (MAC nodes shift by the number of appended samples).
    for i in 0..n_base {
        data[i * d..(i + 1) * d].copy_from_slice(base_feats.row(i));
    }
    for j in 0..base_macs.len() {
        let dst = (n_samples + j) * d;
        data[dst..dst + d].copy_from_slice(base_feats.row(n_base + j));
    }
    // Synthesized rows for extension scans: f(RSS)-weighted mean of their
    // *base* MAC features (the frozen anchor that makes this well-defined),
    // l2-normalized like every inference embedding.
    let base_index: HashMap<MacAddr, usize> =
        base_macs.iter().enumerate().map(|(j, &m)| (m, j)).collect();
    for (k, scan) in ext_samples.iter().enumerate() {
        let mut acc = vec![0.0; d];
        let mut wsum = 0.0;
        for (mac, rssi) in scan.iter() {
            if let Some(&j) = base_index.get(&mac) {
                let w = rssi.edge_weight();
                for (slot, x) in acc.iter_mut().zip(base_feats.row(n_base + j)) {
                    *slot += w * x;
                }
                wsum += w;
            }
        }
        if wsum <= 0.0 {
            return Err(FisError::Model(format!(
                "extension scan {} shares no MAC with the base vocabulary",
                scan.id()
            )));
        }
        for slot in acc.iter_mut() {
            *slot /= wsum;
        }
        l2_normalize(&mut acc);
        let dst = (n_base + k) * d;
        data[dst..dst + d].copy_from_slice(&acc);
    }
    // Synthesized rows for new MACs: weighted mean of the (extension)
    // scans attached to them — every interned MAC has at least one edge.
    for j in base_macs.len()..graph.n_macs() {
        let mut acc = vec![0.0; d];
        let mut wsum = 0.0;
        for &(sample_node, w) in graph.neighbors(graph.mac_node(j)) {
            let src = sample_node * d;
            for (slot, x) in acc.iter_mut().zip(&data[src..src + d]) {
                *slot += w * x;
            }
            wsum += w;
        }
        for slot in acc.iter_mut() {
            *slot /= wsum;
        }
        l2_normalize(&mut acc);
        let dst = (n_samples + j) * d;
        data[dst..dst + d].copy_from_slice(&acc);
    }

    let gnn = RfGnn::from_parts(
        base_gnn.config().clone(),
        Matrix::from_vec(graph.n_nodes(), d, data),
        base_gnn.weights().to_vec(),
    )
    .map_err(FisError::Model)?;
    let mac_index: HashMap<MacAddr, usize> = graph
        .macs()
        .iter()
        .enumerate()
        .map(|(j, &m)| (m, j))
        .collect();

    let references = match stored_references {
        Some(refs) => {
            if refs.len() != combined.len() {
                return Err(FisError::Model(format!(
                    "{} extension references for {} reference scans",
                    refs.len(),
                    combined.len()
                )));
            }
            if refs.iter().any(|r| r.len() != d) {
                return Err(FisError::Model(format!(
                    "extension reference dimension disagrees with embedding dim {d}"
                )));
            }
            refs
        }
        None => {
            // Re-embed every reference scan in the extended space through
            // the same content-seeded inference pass streaming scans take.
            // One scan per work item, so bit-identical at any thread count.
            let rows: Vec<Result<Vec<f64>, String>> =
                fis_parallel::par_map(&combined, 1, |_, scan| {
                    let nbrs = known_neighbors(&graph, &mac_index, scan);
                    if nbrs.is_empty() {
                        return Ok(vec![0.0; d]);
                    }
                    gnn.infer_scan(&graph, &nbrs, scan_seed(seed, scan))
                });
            rows.into_iter()
                .collect::<Result<Vec<Vec<f64>>, String>>()
                .map_err(FisError::Inference)?
        }
    };

    let nn = VpTree::build(&references, |i| !combined[i].is_empty());
    Ok(ExtendedState {
        samples: ext_samples,
        assignment: ext_assignment,
        references,
        graph,
        gnn,
        mac_index,
        n_new_macs,
        nn,
    })
}

fn l2_normalize(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 1e-12 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fis_gnn::RfGnnConfig;
    use fis_synth::BuildingConfig;
    use fis_types::Building;

    use crate::pipeline::FisOneConfig;

    fn quick_pipeline(seed: u64) -> FisOne {
        let mut config = FisOneConfig::default().seed(seed);
        config.gnn = RfGnnConfig::new(16)
            .epochs(10)
            .walks_per_node(4)
            .neighbor_samples(vec![8, 4])
            .seed(seed);
        FisOne::new(config)
    }

    fn easy_building(floors: usize, seed: u64) -> Building {
        BuildingConfig::new("ext", floors)
            .samples_per_floor(40)
            .aps_per_floor(10)
            .atrium_aps(0)
            .seed(seed)
            .generate()
    }

    #[test]
    fn second_floor_anchor_resolves_four_floor_building() {
        let b = easy_building(4, 21);
        let anchor = b.anchor_on(FloorId::from_index(1)).unwrap();
        let outcome =
            identify_with_arbitrary_anchor(&quick_pipeline(1), b.samples(), b.floors(), anchor)
                .unwrap();
        let pred = outcome.prediction().expect("case 2 must resolve");
        let correct = pred
            .labels()
            .iter()
            .zip(b.ground_truth())
            .filter(|(p, t)| p == t)
            .count();
        let acc = correct as f64 / b.len() as f64;
        assert!(acc > 0.6, "accuracy {acc}");
        assert_eq!(pred.labels()[anchor.sample.index()], anchor.floor);
    }

    #[test]
    fn middle_floor_of_odd_building_is_ambiguous() {
        let b = easy_building(3, 22);
        let anchor = b.anchor_on(FloorId::from_index(1)).unwrap();
        let outcome =
            identify_with_arbitrary_anchor(&quick_pipeline(2), b.samples(), b.floors(), anchor)
                .unwrap();
        match outcome {
            ArbitraryAnchorOutcome::Ambiguous { order, assignment } => {
                assert_eq!(order.len(), 3);
                assert_eq!(assignment[anchor.sample.index()], usize::MAX);
            }
            ArbitraryAnchorOutcome::Resolved(_) => panic!("middle anchor must be ambiguous"),
        }
    }

    #[test]
    fn bottom_anchor_matches_core_pipeline_quality() {
        let b = easy_building(3, 23);
        let anchor = b.bottom_anchor().unwrap();
        let outcome =
            identify_with_arbitrary_anchor(&quick_pipeline(3), b.samples(), b.floors(), anchor)
                .unwrap();
        let pred = outcome.prediction().expect("bottom anchor resolves");
        let correct = pred
            .labels()
            .iter()
            .zip(b.ground_truth())
            .filter(|(p, t)| p == t)
            .count();
        assert!(correct as f64 / b.len() as f64 > 0.6);
    }

    #[test]
    fn bad_anchor_rejected() {
        let b = easy_building(3, 24);
        let bogus = LabeledAnchor {
            sample: fis_types::SampleId(u32::MAX),
            floor: FloorId::BOTTOM,
        };
        assert!(
            identify_with_arbitrary_anchor(&quick_pipeline(4), b.samples(), b.floors(), bogus)
                .is_err()
        );
    }
}
