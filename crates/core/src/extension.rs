//! §VI extension: the labeled sample comes from an *arbitrary* floor.
//!
//! With no fixed starting cluster, the TSP is solved from every start and
//! the minimum-cost ordering kept. The anchor's disclosed floor then pins
//! the orientation: its floor corresponds to two candidate path positions
//! (one from each end), and the anchor joins whichever candidate cluster
//! its embedding is closer to (Case 2). When the building has an odd
//! number of floors and the anchor sits exactly in the middle, both
//! candidates coincide positionally and the orientation is undecidable
//! (Case 1) — reported as [`ArbitraryAnchorOutcome::Ambiguous`].

use fis_linalg::Matrix;
use fis_types::{FloorId, LabeledAnchor, SignalSample};

use crate::error::FisError;
use crate::indexing::solve_path;
use crate::pipeline::{FisOne, FloorPrediction};
use crate::similarity::{similarity_matrix, ClusterMacProfile};

/// Result of arbitrary-anchor identification.
#[derive(Debug, Clone, PartialEq)]
pub enum ArbitraryAnchorOutcome {
    /// Orientation was determined; per-sample labels are available.
    Resolved(FloorPrediction),
    /// Case 1: the anchor is on the middle floor of an odd building, so
    /// the ordering cannot be oriented. The unoriented cluster order and
    /// the assignment (anchor excluded, `usize::MAX` in its slot) are
    /// returned for inspection.
    Ambiguous {
        /// Clusters along the optimal (unoriented) path.
        order: Vec<usize>,
        /// Cluster per sample; the anchor's slot holds `usize::MAX`.
        assignment: Vec<usize>,
    },
}

/// Runs the §VI pipeline: cluster without the anchor, solve the TSP from
/// every start, pick the max-similarity ordering, and orient it with the
/// anchor's disclosed floor.
///
/// # Errors
///
/// Returns a [`FisError`] if any underlying stage fails or the anchor is
/// inconsistent with the inputs.
pub fn identify_with_arbitrary_anchor(
    fis: &FisOne,
    samples: &[SignalSample],
    floors: usize,
    anchor: LabeledAnchor,
) -> Result<ArbitraryAnchorOutcome, FisError> {
    if anchor.sample.index() >= samples.len() {
        return Err(FisError::Anchor(format!(
            "anchor sample {} out of bounds ({} samples)",
            anchor.sample,
            samples.len()
        )));
    }
    if anchor.floor.index() >= floors {
        return Err(FisError::Anchor(format!(
            "anchor floor {} exceeds {floors} floors",
            anchor.floor
        )));
    }
    if samples.len() < floors + 1 {
        return Err(FisError::Clustering(format!(
            "{} samples cannot form {floors} clusters plus a held-out anchor",
            samples.len()
        )));
    }

    // Stage 1-2 on ALL samples (the anchor's representation is obtained,
    // §VI), then the anchor is withheld from clustering.
    let embeddings = fis.embed(samples)?;
    let anchor_idx = anchor.sample.index();
    let others: Vec<usize> = (0..samples.len()).filter(|&i| i != anchor_idx).collect();
    let other_embeddings = embeddings.gather_rows(&others);
    let other_assignment = fis.cluster_embeddings(&other_embeddings, floors)?;

    // Expand to a full-length assignment with the anchor missing.
    let mut assignment = vec![usize::MAX; samples.len()];
    for (pos, &orig) in others.iter().enumerate() {
        assignment[orig] = other_assignment[pos];
    }

    // Similarity over the anchor-free clusters.
    let other_samples: Vec<SignalSample> = others.iter().map(|&i| samples[i].clone()).collect();
    let profiles = ClusterMacProfile::from_assignment(&other_samples, &other_assignment, floors);
    let sim = similarity_matrix(fis.config().similarity, &profiles);

    // No fixed start: evaluate all starting clusters, keep the cheapest
    // (= maximum sum of adapted Jaccard coefficients).
    let mut best: Option<fis_tsp::PathSolution> = None;
    for start in 0..floors {
        let sol = solve_path(&sim, start, fis.config().solver)?;
        if best.as_ref().is_none_or(|b| sol.cost < b.cost) {
            best = Some(sol);
        }
    }
    let path = best.expect("at least one start");

    // Candidate positions for the anchor's floor, one from each end.
    let f = anchor.floor.index();
    let p_forward = f;
    let p_backward = floors - 1 - f;
    if p_forward == p_backward {
        // Case 1: middle floor of an odd building.
        return Ok(ArbitraryAnchorOutcome::Ambiguous {
            order: path.order,
            assignment,
        });
    }

    // Case 2: the anchor joins the closer candidate cluster by mean
    // embedding distance d(r, C_i) = Σ ||r' − r|| / |C_i|.
    let c_forward = path.order[p_forward];
    let c_backward = path.order[p_backward];
    let d_forward = mean_distance(&embeddings, anchor_idx, &assignment, c_forward);
    let d_backward = mean_distance(&embeddings, anchor_idx, &assignment, c_backward);

    let (anchor_cluster, orientation_forward) = if d_forward <= d_backward {
        (c_forward, true)
    } else {
        (c_backward, false)
    };
    assignment[anchor_idx] = anchor_cluster;

    let floor_of_cluster: Vec<usize> = {
        let mut fc = vec![0usize; floors];
        for (pos, &cluster) in path.order.iter().enumerate() {
            fc[cluster] = if orientation_forward {
                pos
            } else {
                floors - 1 - pos
            };
        }
        fc
    };
    let order: Vec<usize> = if orientation_forward {
        path.order
    } else {
        path.order.into_iter().rev().collect()
    };
    Ok(ArbitraryAnchorOutcome::Resolved(FloorPrediction::new(
        assignment,
        order,
        floor_of_cluster,
    )))
}

/// Mean Euclidean distance from the embedding of `target` to the members
/// of `cluster` (§VI's `d(r, C_i)`), `+inf` for an empty cluster.
fn mean_distance(embeddings: &Matrix, target: usize, assignment: &[usize], cluster: usize) -> f64 {
    let r = embeddings.row(target);
    let mut sum = 0.0;
    let mut count = 0usize;
    for (i, &c) in assignment.iter().enumerate() {
        if c == cluster && i != target {
            sum += fis_linalg::vec_ops::euclidean(embeddings.row(i), r);
            count += 1;
        }
    }
    if count == 0 {
        f64::INFINITY
    } else {
        sum / count as f64
    }
}

/// Convenience: did the outcome resolve, and if so with which labels?
impl ArbitraryAnchorOutcome {
    /// The prediction, if orientation was determined.
    pub fn prediction(&self) -> Option<&FloorPrediction> {
        match self {
            ArbitraryAnchorOutcome::Resolved(p) => Some(p),
            ArbitraryAnchorOutcome::Ambiguous { .. } => None,
        }
    }

    /// Predicted floor labels, if resolved.
    pub fn labels(&self) -> Option<&[FloorId]> {
        self.prediction().map(FloorPrediction::labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fis_gnn::RfGnnConfig;
    use fis_synth::BuildingConfig;
    use fis_types::Building;

    use crate::pipeline::FisOneConfig;

    fn quick_pipeline(seed: u64) -> FisOne {
        let mut config = FisOneConfig::default().seed(seed);
        config.gnn = RfGnnConfig::new(16)
            .epochs(10)
            .walks_per_node(4)
            .neighbor_samples(vec![8, 4])
            .seed(seed);
        FisOne::new(config)
    }

    fn easy_building(floors: usize, seed: u64) -> Building {
        BuildingConfig::new("ext", floors)
            .samples_per_floor(40)
            .aps_per_floor(10)
            .atrium_aps(0)
            .seed(seed)
            .generate()
    }

    #[test]
    fn second_floor_anchor_resolves_four_floor_building() {
        let b = easy_building(4, 21);
        let anchor = b.anchor_on(FloorId::from_index(1)).unwrap();
        let outcome =
            identify_with_arbitrary_anchor(&quick_pipeline(1), b.samples(), b.floors(), anchor)
                .unwrap();
        let pred = outcome.prediction().expect("case 2 must resolve");
        let correct = pred
            .labels()
            .iter()
            .zip(b.ground_truth())
            .filter(|(p, t)| p == t)
            .count();
        let acc = correct as f64 / b.len() as f64;
        assert!(acc > 0.6, "accuracy {acc}");
        assert_eq!(pred.labels()[anchor.sample.index()], anchor.floor);
    }

    #[test]
    fn middle_floor_of_odd_building_is_ambiguous() {
        let b = easy_building(3, 22);
        let anchor = b.anchor_on(FloorId::from_index(1)).unwrap();
        let outcome =
            identify_with_arbitrary_anchor(&quick_pipeline(2), b.samples(), b.floors(), anchor)
                .unwrap();
        match outcome {
            ArbitraryAnchorOutcome::Ambiguous { order, assignment } => {
                assert_eq!(order.len(), 3);
                assert_eq!(assignment[anchor.sample.index()], usize::MAX);
            }
            ArbitraryAnchorOutcome::Resolved(_) => panic!("middle anchor must be ambiguous"),
        }
    }

    #[test]
    fn bottom_anchor_matches_core_pipeline_quality() {
        let b = easy_building(3, 23);
        let anchor = b.bottom_anchor().unwrap();
        let outcome =
            identify_with_arbitrary_anchor(&quick_pipeline(3), b.samples(), b.floors(), anchor)
                .unwrap();
        let pred = outcome.prediction().expect("bottom anchor resolves");
        let correct = pred
            .labels()
            .iter()
            .zip(b.ground_truth())
            .filter(|(p, t)| p == t)
            .count();
        assert!(correct as f64 / b.len() as f64 > 0.6);
    }

    #[test]
    fn bad_anchor_rejected() {
        let b = easy_building(3, 24);
        let bogus = LabeledAnchor {
            sample: fis_types::SampleId(u32::MAX),
            floor: FloorId::BOTTOM,
        };
        assert!(
            identify_with_arbitrary_anchor(&quick_pipeline(4), b.samples(), b.floors(), bogus)
                .is_err()
        );
    }
}
