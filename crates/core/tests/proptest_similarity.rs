//! Property-based tests for the spillover similarity and cluster indexing.

use fis_core::indexing::{index_clusters, TspSolver};
use fis_core::similarity::{adapted_jaccard, plain_jaccard, similarity_matrix, ClusterMacProfile};
use fis_core::SimilarityMethod;
use fis_types::{MacAddr, Rssi, SignalSample};
use proptest::prelude::*;

fn cluster(mac_sets: Vec<Vec<u64>>) -> ClusterMacProfile {
    let samples: Vec<SignalSample> = mac_sets
        .into_iter()
        .enumerate()
        .map(|(i, macs)| {
            SignalSample::builder(i as u32)
                .readings(
                    macs.into_iter()
                        .map(|m| (MacAddr::from_u64(m), Rssi::new(-60.0).unwrap())),
                )
                .build()
        })
        .collect();
    ClusterMacProfile::from_members(samples.iter())
}

fn mac_sets() -> impl Strategy<Value = Vec<Vec<u64>>> {
    proptest::collection::vec(proptest::collection::vec(1u64..12, 1..6), 1..8)
}

proptest! {
    #[test]
    fn adapted_jaccard_bounded_and_symmetric(a in mac_sets(), b in mac_sets()) {
        let pa = cluster(a);
        let pb = cluster(b);
        let ab = adapted_jaccard(&pa, &pb);
        let ba = adapted_jaccard(&pb, &pa);
        prop_assert!((0.0..=1.0).contains(&ab), "ab={ab}");
        prop_assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn plain_jaccard_bounded_and_symmetric(a in mac_sets(), b in mac_sets()) {
        let pa = cluster(a);
        let pb = cluster(b);
        let ab = plain_jaccard(&pa, &pb);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((ab - plain_jaccard(&pb, &pa)).abs() < 1e-12);
    }

    #[test]
    fn self_similarity_is_one_for_nonempty(a in mac_sets()) {
        let p = cluster(a);
        prop_assert!((adapted_jaccard(&p, &p) - 1.0).abs() < 1e-12);
        prop_assert!((plain_jaccard(&p, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_iff_disjoint(a in mac_sets()) {
        let pa = cluster(a.clone());
        // Shift MACs out of range to guarantee disjointness.
        let shifted: Vec<Vec<u64>> = a.iter().map(|s| s.iter().map(|m| m + 1000).collect()).collect();
        let pb = cluster(shifted);
        prop_assert_eq!(adapted_jaccard(&pa, &pb), 0.0);
        prop_assert_eq!(plain_jaccard(&pa, &pb), 0.0);
    }

    /// A chain of clusters with geometrically decaying similarity must be
    /// indexed in chain order from either end.
    #[test]
    fn indexing_recovers_chains(k in 3usize..8, decay in 1.5..4.0f64) {
        let sim: Vec<Vec<f64>> = (0..k)
            .map(|i: usize| {
                (0..k)
                    .map(|j: usize| {
                        if i == j { 1.0 } else { 1.0 / decay.powi(i.abs_diff(j) as i32) }
                    })
                    .collect()
            })
            .collect();
        for solver in [TspSolver::Exact, TspSolver::TwoOpt] {
            let idx = index_clusters(&sim, 0, solver).unwrap();
            prop_assert_eq!(&idx.order, &(0..k).collect::<Vec<_>>(), "{:?}", solver);
        }
    }

    #[test]
    fn similarity_matrix_consistent_with_pairwise(a in mac_sets(), b in mac_sets(), c in mac_sets()) {
        let profiles = vec![cluster(a), cluster(b), cluster(c)];
        let m = similarity_matrix(SimilarityMethod::AdaptedJaccard, &profiles);
        for i in 0..3 {
            prop_assert_eq!(m[i][i], 1.0);
            for j in 0..3 {
                prop_assert!((m[i][j] - m[j][i]).abs() < 1e-12);
                if i != j {
                    let expect = adapted_jaccard(&profiles[i], &profiles[j]);
                    prop_assert!((m[i][j] - expect).abs() < 1e-12);
                }
            }
        }
    }
}
