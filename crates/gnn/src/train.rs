//! Unsupervised training of RF-GNN on random-walk co-occurrence pairs.

use std::sync::Arc;

use fis_autograd::{Adam, Tape};
use fis_graph::{cooccurrence_pairs, random_walks, BipartiteGraph, NegativeSampler, WalkStrategy};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::config::RfGnnConfig;
use crate::model::RfGnn;

/// Summary of one training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss per epoch, in order.
    pub epoch_losses: Vec<f64>,
    /// Number of positive co-occurrence pairs used per epoch.
    pub pairs: usize,
}

impl TrainReport {
    /// Whether the loss decreased from the first to the last epoch.
    pub fn improved(&self) -> bool {
        match (self.epoch_losses.first(), self.epoch_losses.last()) {
            (Some(first), Some(last)) => last < first,
            _ => false,
        }
    }
}

impl RfGnn {
    /// Trains an RF-GNN on `graph` with the paper's unsupervised objective
    /// and returns the model.
    ///
    /// # Errors
    ///
    /// Returns an error if the config is inconsistent, the graph has no
    /// edges (no walks, no negative sampler), or no co-occurrence pairs
    /// could be generated.
    pub fn train(graph: &BipartiteGraph, config: &RfGnnConfig) -> Result<Self, String> {
        Self::train_with_report(graph, config).map(|(model, _)| model)
    }

    /// [`RfGnn::train`] that also returns the per-epoch loss trace.
    ///
    /// # Errors
    ///
    /// See [`RfGnn::train`].
    pub fn train_with_report(
        graph: &BipartiteGraph,
        config: &RfGnnConfig,
    ) -> Result<(Self, TrainReport), String> {
        config.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

        let strategy = if config.attention {
            WalkStrategy::Weighted
        } else {
            WalkStrategy::Uniform
        };
        let walks = random_walks(
            graph,
            &mut rng,
            config.walks_per_node,
            config.walk_length,
            strategy,
        );
        let mut pairs = cooccurrence_pairs(&walks, config.walk_length);
        if pairs.is_empty() {
            return Err("no co-occurrence pairs: graph has no edges".to_owned());
        }
        let neg_sampler = NegativeSampler::new(graph)?;

        let mut model = RfGnn::init(graph, config);
        let mut opt = Adam::new(config.learning_rate);
        let mut epoch_losses = Vec::with_capacity(config.epochs);

        for epoch in 0..config.epochs {
            pairs.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for batch in pairs.chunks(config.batch_pairs) {
                let loss = model.train_batch(graph, batch, &neg_sampler, &mut rng, &mut opt)?;
                epoch_loss += loss;
                batches += 1;
            }
            let mean = epoch_loss / batches.max(1) as f64;
            fis_obs::event(fis_obs::Level::Trace, "gnn", "epoch")
                .num("epoch", epoch as f64)
                .num("loss", mean)
                .emit();
            epoch_losses.push(mean);
        }
        let report = TrainReport {
            epoch_losses,
            pairs: pairs.len(),
        };
        Ok((model, report))
    }

    /// One minibatch: forward unique nodes, skip-gram loss with τ negative
    /// samples, backward, Adam step. Returns the batch loss.
    fn train_batch(
        &mut self,
        graph: &BipartiteGraph,
        batch: &[(usize, usize)],
        neg_sampler: &NegativeSampler,
        rng: &mut ChaCha8Rng,
        opt: &mut Adam,
    ) -> Result<f64, String> {
        let tau = self.config.tau;
        // Draw negatives, then assemble the unique node list for one
        // forward pass shared by anchors, positives, and negatives. A
        // dense stamp vector over the node space replaces a HashMap:
        // node ids are already small dense indices, and this interning
        // loop was a measurable slice of the per-batch cost.
        let mut uniq: Vec<usize> = Vec::new();
        let mut slot_of: Vec<u32> = vec![u32::MAX; graph.n_nodes()];
        let mut intern = |node: usize, uniq: &mut Vec<usize>| {
            if slot_of[node] == u32::MAX {
                slot_of[node] = uniq.len() as u32;
                uniq.push(node);
            }
            slot_of[node] as usize
        };
        let mut idx_i = Vec::with_capacity(batch.len());
        let mut idx_j = Vec::with_capacity(batch.len());
        let mut idx_i_rep = Vec::with_capacity(batch.len() * tau);
        let mut idx_z = Vec::with_capacity(batch.len() * tau);
        let mut negs: Vec<usize> = Vec::with_capacity(tau);
        for &(i, j) in batch {
            let ii = intern(i, &mut uniq);
            let jj = intern(j, &mut uniq);
            idx_i.push(ii);
            idx_j.push(jj);
            negs.clear();
            neg_sampler.sample_excluding_into(rng, tau, &[i, j], &mut negs);
            for &z in &negs {
                let zz = intern(z, &mut uniq);
                idx_i_rep.push(ii);
                idx_z.push(zz);
            }
        }

        let mut tape = Tape::new();
        let vars = self.leaves(&mut tape);
        let reps = self.forward(&mut tape, graph, rng, &vars, &uniq);

        let pos_scores = tape.gathered_rowwise_dot(reps, Arc::new(idx_i), Arc::new(idx_j));
        let pos_losses = tape.neg_log_sigmoid(pos_scores);
        let pos_sum = tape.sum_all(pos_losses);

        let neg_scores = tape.gathered_rowwise_dot(reps, Arc::new(idx_i_rep), Arc::new(idx_z));
        let neg_flipped = tape.scale(neg_scores, -1.0);
        let neg_losses = tape.neg_log_sigmoid(neg_flipped);
        let neg_sum = tape.sum_all(neg_losses);

        let total = tape.add(pos_sum, neg_sum);
        let loss = tape.scale(total, 1.0 / batch.len() as f64);
        tape.backward(loss);
        let loss_value = tape.scalar(loss);
        if !loss_value.is_finite() {
            return Err(format!("training diverged: loss = {loss_value}"));
        }

        for (k, w) in self.weights.iter_mut().enumerate() {
            opt.step(&format!("W{k}"), w, tape.grad(vars.weights[k]));
        }
        if self.config.train_features {
            opt.step("features", &mut self.features, tape.grad(vars.features));
        }
        Ok(loss_value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fis_synth::BuildingConfig;

    fn tiny_graph(floors: usize, seed: u64) -> (BipartiteGraph, Vec<usize>) {
        let b = BuildingConfig::new("t", floors)
            .samples_per_floor(25)
            .aps_per_floor(6)
            .atrium_aps(0)
            .seed(seed)
            .generate();
        let graph = BipartiteGraph::from_samples(b.samples()).unwrap();
        let truth = b.ground_truth().iter().map(|f| f.index()).collect();
        (graph, truth)
    }

    fn quick_config() -> RfGnnConfig {
        RfGnnConfig::new(8)
            .epochs(4)
            .walks_per_node(2)
            .neighbor_samples(vec![5, 3])
            .seed(7)
    }

    #[test]
    fn loss_decreases() {
        let (graph, _) = tiny_graph(2, 1);
        let (_, report) = RfGnn::train_with_report(&graph, &quick_config()).unwrap();
        assert!(report.improved(), "losses: {:?}", report.epoch_losses);
        assert!(report.pairs > 0);
    }

    #[test]
    fn training_is_deterministic() {
        let (graph, _) = tiny_graph(2, 2);
        let a = RfGnn::train_with_report(&graph, &quick_config()).unwrap().1;
        let b = RfGnn::train_with_report(&graph, &quick_config()).unwrap().1;
        assert_eq!(a, b);
    }

    #[test]
    fn embeddings_have_unit_rows() {
        let (graph, _) = tiny_graph(2, 3);
        let model = RfGnn::train(&graph, &quick_config()).unwrap();
        let emb = model.embed_samples(&graph);
        assert_eq!(emb.shape(), (graph.n_samples(), 8));
        for norm in emb.row_norms() {
            assert!((norm - 1.0).abs() < 1e-9 || norm < 1e-9, "norm={norm}");
        }
        assert!(emb.is_finite());
    }

    #[test]
    fn same_floor_pairs_closer_than_cross_floor() {
        let (graph, truth) = tiny_graph(3, 4);
        let model = RfGnn::train(&graph, &quick_config().epochs(6)).unwrap();
        let emb = model.embed_samples(&graph);
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for i in 0..graph.n_samples() {
            for j in (i + 1)..graph.n_samples() {
                let d = fis_linalg::vec_ops::euclidean(emb.row(i), emb.row(j));
                if truth[i] == truth[j] {
                    same.push(d);
                } else if truth[i].abs_diff(truth[j]) >= 2 {
                    diff.push(d);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&same) < mean(&diff),
            "same-floor {} should be closer than distant-floor {}",
            mean(&same),
            mean(&diff)
        );
    }

    #[test]
    fn no_attention_variant_trains() {
        let (graph, _) = tiny_graph(2, 5);
        let config = quick_config().without_attention();
        let (model, report) = RfGnn::train_with_report(&graph, &config).unwrap();
        assert!(!model.config().attention);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn invalid_config_rejected() {
        let (graph, _) = tiny_graph(2, 6);
        let mut config = quick_config();
        config.hops = 5;
        assert!(RfGnn::train(&graph, &config).is_err());
    }

    #[test]
    fn edgeless_graph_rejected() {
        use fis_types::SignalSample;
        let samples = vec![SignalSample::builder(0).build()];
        let graph = BipartiteGraph::from_samples(&samples).unwrap();
        assert!(RfGnn::train(&graph, &quick_config()).is_err());
    }

    #[test]
    fn embed_nodes_covers_macs_too() {
        let (graph, _) = tiny_graph(2, 8);
        let model = RfGnn::train(&graph, &quick_config()).unwrap();
        let mac_nodes: Vec<usize> = (0..graph.n_macs()).map(|j| graph.mac_node(j)).collect();
        let emb = model.embed_nodes(&graph, &mac_nodes);
        assert_eq!(emb.rows(), graph.n_macs());
        assert!(emb.is_finite());
    }
}
