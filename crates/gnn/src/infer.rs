//! Inference-only forward passes: no tape, no gradient bookkeeping.
//!
//! Training and batch embedding ([`RfGnn::embed_nodes`]) run the K-hop
//! forward through the autograd tape, which allocates a node (value +
//! zeroed gradient) per operation. Serving only needs the values, so this
//! module re-implements the recursion with plain [`Matrix`] ops in the
//! exact same order — [`RfGnn::infer_nodes`] is **bit-identical** to
//! [`RfGnn::embed_nodes`] (enforced by tests) while skipping every
//! gradient allocation.
//!
//! It also extends the forward pass to **virtual scan nodes**: a new
//! crowdsourced scan that was never part of the training graph is embedded
//! by attaching it to the MAC nodes it heard ([`RfGnn::infer_scan`]). Its
//! hop-0 representation is the `f(RSS)`-weighted mean of its known MACs'
//! learned features; every deeper hop aggregates sampled neighborhoods of
//! the training graph, exactly as the paper's inductive argument for
//! choosing a GNN over static embeddings prescribes.

use std::collections::HashMap;

use fis_graph::BipartiteGraph;
use fis_linalg::{func, vec_ops, Matrix};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::model::RfGnn;

/// A scan attached to the training graph for inference: its known MAC
/// neighbors (unified node indices) with positive `f(RSS)` weights, plus
/// the synthesized hop-0 feature row.
struct VirtualScan<'a> {
    neighbors: &'a [(usize, f64)],
    feature: Vec<f64>,
}

impl RfGnn {
    /// Tape-free variant of [`RfGnn::embed_nodes`]: embeds an arbitrary
    /// set of unified node indices with identical RNG consumption and
    /// arithmetic order, so the result is bit-identical — only the
    /// gradient bookkeeping is skipped.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds for `graph`.
    pub fn infer_nodes(&self, graph: &BipartiteGraph, nodes: &[usize]) -> Matrix {
        for &n in nodes {
            assert!(n < graph.n_nodes(), "node {n} out of bounds");
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ 0x1AFE1D);
        let mut out = Matrix::zeros(nodes.len(), self.config.dim);
        for _pass in 0..self.config.inference_passes {
            for (chunk_start, chunk) in nodes.chunks(512).enumerate().map(|(i, c)| (i * 512, c)) {
                let values = self.infer_layer(graph, &mut rng, None, chunk, self.config.hops);
                for (i, _) in chunk.iter().enumerate() {
                    vec_ops::axpy(out.row_mut(chunk_start + i), 1.0, values.row(i));
                }
            }
        }
        out.scale(1.0 / self.config.inference_passes as f64)
            .l2_normalize_rows()
    }

    /// Embeds one scan that is *not* a node of `graph`.
    ///
    /// `neighbors` lists the unified indices of the MAC nodes the scan
    /// heard, with their positive `f(RSS)` weights. The scan's hop-0
    /// representation is the weight-normalized mean of those MACs' learned
    /// features; K-hop aggregation then proceeds through the training
    /// graph. Averages `inference_passes` stochastic passes seeded by
    /// `seed` alone, so for a fixed `(model, scan, seed)` the embedding is
    /// bit-identical regardless of batching or thread count.
    ///
    /// # Errors
    ///
    /// Returns a message if `neighbors` is empty (nothing known to attach
    /// to), lists an out-of-bounds node, or carries a non-positive weight.
    pub fn infer_scan(
        &self,
        graph: &BipartiteGraph,
        neighbors: &[(usize, f64)],
        seed: u64,
    ) -> Result<Vec<f64>, String> {
        if neighbors.is_empty() {
            return Err("scan has no neighbors in the training graph".to_owned());
        }
        for &(n, w) in neighbors {
            if n >= graph.n_nodes() {
                return Err(format!("neighbor node {n} out of bounds"));
            }
            if !w.is_finite() || w <= 0.0 {
                return Err(format!("neighbor weight {w} must be positive and finite"));
            }
        }
        let total: f64 = neighbors.iter().map(|&(_, w)| w).sum();
        let mut feature = vec![0.0; self.config.dim];
        for &(n, w) in neighbors {
            vec_ops::axpy(&mut feature, w / total, self.features.row(n));
        }
        let scan = VirtualScan { neighbors, feature };

        let virt = graph.n_nodes();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut out = vec![0.0; self.config.dim];
        for _pass in 0..self.config.inference_passes {
            let values = self.infer_layer(graph, &mut rng, Some(&scan), &[virt], self.config.hops);
            vec_ops::axpy(&mut out, 1.0, values.row(0));
        }
        vec_ops::scale(&mut out, 1.0 / self.config.inference_passes as f64);
        let norm = out.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-12 {
            vec_ops::scale(&mut out, 1.0 / norm);
        }
        Ok(out)
    }

    /// Value-only mirror of the tape `layer` recursion. Node index
    /// `graph.n_nodes()` denotes the virtual scan node when `scan` is set.
    fn infer_layer<R: Rng + ?Sized>(
        &self,
        graph: &BipartiteGraph,
        rng: &mut R,
        scan: Option<&VirtualScan<'_>>,
        nodes: &[usize],
        depth: usize,
    ) -> Matrix {
        let virt = graph.n_nodes();
        if depth == 0 {
            let mut out = Matrix::zeros(nodes.len(), self.config.dim);
            for (i, &n) in nodes.iter().enumerate() {
                let row = if n == virt {
                    scan.expect("virtual index requires a scan")
                        .feature
                        .as_slice()
                } else {
                    self.features.row(n)
                };
                out.row_mut(i).copy_from_slice(row);
            }
            return out;
        }
        let hop_index = self.config.hops - depth;
        let sample_size = self.config.neighbor_samples[hop_index];

        let mut child_list: Vec<usize> = nodes.to_vec();
        let mut child_index: HashMap<usize, usize> =
            nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let mut groups: Vec<Vec<(usize, f64)>> = Vec::with_capacity(nodes.len());
        for &node in nodes {
            let nbrs: &[(usize, f64)] = if node == virt {
                scan.expect("virtual index requires a scan").neighbors
            } else {
                graph.neighbors(node)
            };
            let sampled = self.sample_from(nbrs, rng, node, sample_size);
            let total: f64 = sampled.iter().map(|&(_, w)| w).sum();
            let mut group = Vec::with_capacity(sampled.len());
            for (nbr, w) in sampled {
                let idx = *child_index.entry(nbr).or_insert_with(|| {
                    child_list.push(nbr);
                    child_list.len() - 1
                });
                group.push((idx, w / total));
            }
            groups.push(group);
        }

        let child_reps = self.infer_layer(graph, rng, scan, &child_list, depth - 1);
        // Nodes occupy the first positions of child_list by construction.
        let self_reps = child_reps.gather_rows(&(0..nodes.len()).collect::<Vec<_>>());
        let mut agg = Matrix::zeros(groups.len(), child_reps.cols());
        for (i, group) in groups.iter().enumerate() {
            for &(idx, w) in group {
                vec_ops::axpy(agg.row_mut(i), w, child_reps.row(idx));
            }
        }
        let lin = self_reps.hcat(&agg).matmul(&self.weights[hop_index]);
        let act = if hop_index == 0 {
            lin
        } else {
            lin.map(func::relu)
        };
        act.l2_normalize_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RfGnnConfig;
    use fis_synth::BuildingConfig;

    fn trained(seed: u64) -> (BipartiteGraph, RfGnn) {
        let b = BuildingConfig::new("t", 3)
            .samples_per_floor(20)
            .aps_per_floor(6)
            .atrium_aps(0)
            .seed(seed)
            .generate();
        let graph = BipartiteGraph::from_samples(b.samples()).unwrap();
        let config = RfGnnConfig::new(8)
            .epochs(3)
            .walks_per_node(2)
            .neighbor_samples(vec![5, 3])
            .seed(seed);
        let model = RfGnn::train(&graph, &config).unwrap();
        (graph, model)
    }

    #[test]
    fn infer_nodes_bit_identical_to_tape_embedding() {
        let (graph, model) = trained(11);
        let nodes: Vec<usize> = (0..graph.n_samples()).collect();
        let tape = model.embed_nodes(&graph, &nodes);
        let free = model.infer_nodes(&graph, &nodes);
        assert_eq!(tape.as_slice(), free.as_slice(), "forward paths diverged");
    }

    #[test]
    fn infer_scan_is_deterministic_and_unit_norm() {
        let (graph, model) = trained(12);
        let nbrs: Vec<(usize, f64)> = (0..3)
            .map(|j| (graph.mac_node(j), 40.0 + j as f64))
            .collect();
        let a = model.infer_scan(&graph, &nbrs, 99).unwrap();
        let b = model.infer_scan(&graph, &nbrs, 99).unwrap();
        assert_eq!(a, b);
        let norm = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
        // A different seed draws different neighborhoods.
        let c = model.infer_scan(&graph, &nbrs, 100).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn infer_scan_rejects_degenerate_inputs() {
        let (graph, model) = trained(13);
        assert!(model.infer_scan(&graph, &[], 1).is_err());
        assert!(model
            .infer_scan(&graph, &[(graph.n_nodes() + 5, 10.0)], 1)
            .is_err());
        assert!(model.infer_scan(&graph, &[(0, -3.0)], 1).is_err());
        assert!(model.infer_scan(&graph, &[(0, f64::NAN)], 1).is_err());
    }

    #[test]
    fn from_parts_validates_shapes() {
        let (_, model) = trained(14);
        let config = model.config().clone();
        let ok = RfGnn::from_parts(
            config.clone(),
            model.features().clone(),
            model.weights().to_vec(),
        );
        assert!(ok.is_ok());
        let bad = RfGnn::from_parts(
            config.clone(),
            Matrix::zeros(4, 3),
            model.weights().to_vec(),
        );
        assert!(bad.is_err());
        let bad2 = RfGnn::from_parts(config, model.features().clone(), vec![]);
        assert!(bad2.is_err());
    }
}
