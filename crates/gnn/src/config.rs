//! RF-GNN hyperparameters.

/// Hyperparameters for [`crate::RfGnn`].
///
/// The defaults follow the paper where it is explicit (τ = 4, walk length
/// 5, K = 2 hops) and GraphSAGE conventions elsewhere.
#[derive(Debug, Clone, PartialEq)]
pub struct RfGnnConfig {
    /// Embedding dimension (the paper sweeps 8–64; default 16).
    pub dim: usize,
    /// Number of aggregation hops `K`.
    pub hops: usize,
    /// Neighbors sampled per node at each hop (outermost first).
    pub neighbor_samples: Vec<usize>,
    /// Random walks started from every node.
    pub walks_per_node: usize,
    /// Steps per random walk (the paper uses 5).
    pub walk_length: usize,
    /// Negative samples per positive pair (the paper uses τ = 4).
    pub tau: usize,
    /// Training epochs over the co-occurrence pairs.
    pub epochs: usize,
    /// Positive pairs per minibatch.
    pub batch_pairs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// RSS-attention on (true) or the uniform-sampling/mean-aggregation
    /// ablation (false).
    pub attention: bool,
    /// Whether the initial node features `r^0` receive gradients.
    pub train_features: bool,
    /// Stochastic forward passes averaged (then re-normalized) at
    /// inference time. More passes reduce neighbor-sampling noise in the
    /// final embeddings.
    pub inference_passes: usize,
    /// RNG seed controlling initialization, walks, sampling, batching.
    pub seed: u64,
}

impl RfGnnConfig {
    /// Creates a config with embedding dimension `dim` and defaults
    /// elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        Self {
            dim,
            hops: 2,
            neighbor_samples: vec![10, 5],
            walks_per_node: 12,
            walk_length: 5,
            tau: 4,
            epochs: 30,
            batch_pairs: 1024,
            learning_rate: 0.02,
            attention: true,
            train_features: true,
            inference_passes: 4,
            seed: 0,
        }
    }

    /// Sets the number of epochs.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disables the RSS attention (Figure 8(a,b) ablation).
    pub fn without_attention(mut self) -> Self {
        self.attention = false;
        self
    }

    /// Sets walks per node.
    pub fn walks_per_node(mut self, walks: usize) -> Self {
        self.walks_per_node = walks;
        self
    }

    /// Sets the per-hop neighbor sample sizes (outermost hop first) and the
    /// hop count to match.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty or contains zero.
    pub fn neighbor_samples(mut self, sizes: Vec<usize>) -> Self {
        assert!(!sizes.is_empty(), "need at least one hop");
        assert!(
            sizes.iter().all(|&s| s > 0),
            "sample sizes must be positive"
        );
        self.hops = sizes.len();
        self.neighbor_samples = sizes;
        self
    }

    /// Sets the learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn learning_rate(mut self, lr: f64) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        self.learning_rate = lr;
        self
    }

    /// Validates cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns a message if `hops != neighbor_samples.len()` or any count
    /// field is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.hops != self.neighbor_samples.len() {
            return Err(format!(
                "hops {} != neighbor_samples.len() {}",
                self.hops,
                self.neighbor_samples.len()
            ));
        }
        if self.hops == 0 {
            return Err("need at least one hop".to_owned());
        }
        if self.walk_length == 0 || self.walks_per_node == 0 {
            return Err("walks must be non-trivial".to_owned());
        }
        if self.batch_pairs == 0 {
            return Err("batch_pairs must be positive".to_owned());
        }
        if self.epochs == 0 {
            return Err("epochs must be positive".to_owned());
        }
        if self.inference_passes == 0 {
            return Err("inference_passes must be positive".to_owned());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_faithful() {
        let c = RfGnnConfig::new(16);
        assert_eq!(c.tau, 4);
        assert_eq!(c.walk_length, 5);
        assert_eq!(c.hops, 2);
        assert!(c.attention);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_chain() {
        let c = RfGnnConfig::new(8)
            .epochs(3)
            .seed(9)
            .without_attention()
            .walks_per_node(2)
            .neighbor_samples(vec![5, 3, 2])
            .learning_rate(0.01);
        assert_eq!(c.hops, 3);
        assert!(!c.attention);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_catches_mismatch() {
        let mut c = RfGnnConfig::new(8);
        c.hops = 3;
        assert!(c.validate().is_err());
        let mut c2 = RfGnnConfig::new(8);
        c2.epochs = 0;
        assert!(c2.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dim_panics() {
        let _ = RfGnnConfig::new(0);
    }
}
