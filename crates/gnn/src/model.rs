//! The RF-GNN encoder: K-hop sampled, RSS-attention-weighted aggregation.

use std::sync::Arc;

use fis_autograd::tape::RowGroups;
use fis_autograd::{Tape, Var};
use fis_graph::BipartiteGraph;
use fis_linalg::{init, Matrix};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::config::RfGnnConfig;

/// A trained RF-GNN encoder.
///
/// Holds the learned initial node features `r^0` and the per-hop weight
/// matrices `W_k`. Because the encoder is *inductive* (it aggregates
/// sampled neighborhoods at inference time), it can embed nodes of a graph
/// that grew after training — the paper's motivation for choosing a GNN
/// over static embedding methods.
#[derive(Debug, Clone)]
pub struct RfGnn {
    pub(crate) config: RfGnnConfig,
    pub(crate) features: Matrix,
    pub(crate) weights: Vec<Matrix>,
}

/// Leaf variables for one forward/backward pass.
pub(crate) struct ModelVars {
    pub features: Var,
    pub weights: Vec<Var>,
}

impl RfGnn {
    /// Initializes an untrained model for `graph` (used by the trainer).
    pub(crate) fn init(graph: &BipartiteGraph, config: &RfGnnConfig) -> Self {
        let d = config.dim;
        let features = init::uniform_matrix(graph.n_nodes(), d, -0.5, 0.5, config.seed ^ 0xFEED);
        let weights = (0..config.hops)
            .map(|k| init::xavier_uniform(2 * d, d, config.seed ^ (0xBEEF + k as u64)))
            .collect();
        Self {
            config: config.clone(),
            features,
            weights,
        }
    }

    /// Reassembles a model from its persisted parts, validating shapes.
    ///
    /// This is the load-side counterpart of serializing the learned
    /// `features` / `weights`; see `fis_gnn::persist`.
    ///
    /// # Errors
    ///
    /// Returns a message if the config is inconsistent or any matrix shape
    /// disagrees with it.
    pub fn from_parts(
        config: RfGnnConfig,
        features: Matrix,
        weights: Vec<Matrix>,
    ) -> Result<Self, String> {
        config.validate()?;
        let d = config.dim;
        if features.cols() != d {
            return Err(format!(
                "feature matrix is {}x{}, expected {d} columns",
                features.rows(),
                features.cols()
            ));
        }
        if weights.len() != config.hops {
            return Err(format!(
                "{} weight matrices for {} hops",
                weights.len(),
                config.hops
            ));
        }
        for (k, w) in weights.iter().enumerate() {
            if w.shape() != (2 * d, d) {
                return Err(format!(
                    "weight matrix W{k} is {}x{}, expected {}x{d}",
                    w.rows(),
                    w.cols(),
                    2 * d
                ));
            }
        }
        Ok(Self {
            config,
            features,
            weights,
        })
    }

    /// The configuration this model was built with.
    pub fn config(&self) -> &RfGnnConfig {
        &self.config
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// The learned initial node features `r^0` (one row per graph node).
    pub fn features(&self) -> &Matrix {
        &self.features
    }

    /// The learned per-hop weight matrices `W_k`, outermost hop first.
    pub fn weights(&self) -> &[Matrix] {
        &self.weights
    }

    /// Registers the model parameters as tape leaves.
    pub(crate) fn leaves(&self, tape: &mut Tape) -> ModelVars {
        ModelVars {
            features: tape.leaf(self.features.clone()),
            weights: self.weights.iter().map(|w| tape.leaf(w.clone())).collect(),
        }
    }

    /// K-hop forward pass for `nodes`, returning their `(|nodes| x dim)`
    /// representation variable on `tape`.
    pub(crate) fn forward<R: Rng + ?Sized>(
        &self,
        tape: &mut Tape,
        graph: &BipartiteGraph,
        rng: &mut R,
        vars: &ModelVars,
        nodes: &[usize],
    ) -> Var {
        self.layer(tape, graph, rng, vars, nodes, self.config.hops)
    }

    /// Recursive layer computation. `depth` counts remaining hops; depth 0
    /// reads the raw features `r^0`.
    fn layer<R: Rng + ?Sized>(
        &self,
        tape: &mut Tape,
        graph: &BipartiteGraph,
        rng: &mut R,
        vars: &ModelVars,
        nodes: &[usize],
        depth: usize,
    ) -> Var {
        if depth == 0 {
            return tape.gather_rows(vars.features, Arc::new(nodes.to_vec()));
        }
        let hop_index = self.config.hops - depth; // 0 = outermost sampling
        let sample_size = self.config.neighbor_samples[hop_index];

        // The child node list starts with the nodes themselves (for the
        // CONCAT self-representation) and extends with sampled neighbors,
        // deduplicated so the recursion stays bounded by the graph size.
        // Dedup uses a dense stamp vector over the node space rather than
        // a HashMap: node ids are small dense indices and this runs once
        // per hop per batch.
        let mut child_list: Vec<usize> = nodes.to_vec();
        let mut child_slot: Vec<u32> = vec![u32::MAX; graph.n_nodes()];
        for (i, &n) in nodes.iter().enumerate() {
            child_slot[n] = i as u32;
        }
        let mut groups = RowGroups::with_capacity(nodes.len(), nodes.len() * sample_size.max(1));
        let mut sampled: Vec<(usize, f64)> = Vec::with_capacity(sample_size.max(1));
        for &node in nodes {
            sampled.clear();
            self.sample_from_into(graph.neighbors(node), rng, node, sample_size, &mut sampled);
            let total: f64 = sampled.iter().map(|&(_, w)| w).sum();
            for &(nbr, w) in &sampled {
                if child_slot[nbr] == u32::MAX {
                    child_slot[nbr] = child_list.len() as u32;
                    child_list.push(nbr);
                }
                groups.push_entry(child_slot[nbr] as usize, w / total);
            }
            groups.finish_row();
        }

        let child_reps = self.layer(tape, graph, rng, vars, &child_list, depth - 1);
        // Nodes occupy the first positions of child_list by construction.
        let self_idx: Vec<usize> = (0..nodes.len()).collect();
        let self_reps = tape.gather_rows(child_reps, Arc::new(self_idx));
        let agg = tape.aggregate(child_reps, Arc::new(groups));
        let cat = tape.hcat(self_reps, agg);
        let lin = tape.matmul(cat, vars.weights[hop_index]);
        // σ(·) on the inner hops only. The outermost hop (hop_index 0) stays
        // linear before normalization: with a ReLU there, embeddings would be
        // confined to the non-negative orthant, negative-pair dot products
        // could never go below zero, and the τ = 4 negative terms would pull
        // every embedding toward mutual orthogonality — a degenerate optimum
        // with no floor structure (standard GraphSAGE practice).
        let act = if hop_index == 0 { lin } else { tape.relu(lin) };
        tape.l2_normalize_rows(act)
    }

    /// Draws `k` neighbors with replacement together with normalization
    /// weights, from an explicit adjacency list so the inference path can
    /// sample from a virtual scan node that is not part of the training
    /// graph. With attention on, both the draw probability and the
    /// aggregation weight are proportional to `f(RSS)`; the ablation draws
    /// uniformly and aggregates with equal weights (mean aggregator).
    ///
    /// Isolated nodes contribute a single zero-weight self-loop so the
    /// aggregate is a zero vector rather than a panic.
    pub(crate) fn sample_from<R: Rng + ?Sized>(
        &self,
        nbrs: &[(usize, f64)],
        rng: &mut R,
        node: usize,
        k: usize,
    ) -> Vec<(usize, f64)> {
        let mut out = Vec::with_capacity(k.max(1));
        self.sample_from_into(nbrs, rng, node, k, &mut out);
        out
    }

    /// [`RfGnn::sample_from`] appending into a caller-owned buffer so the
    /// per-batch layer loop can reuse one allocation for every node. Draw
    /// order and arithmetic are identical to the allocating variant.
    pub(crate) fn sample_from_into<R: Rng + ?Sized>(
        &self,
        nbrs: &[(usize, f64)],
        rng: &mut R,
        node: usize,
        k: usize,
        out: &mut Vec<(usize, f64)>,
    ) {
        if nbrs.is_empty() {
            out.push((node, 1.0));
            return;
        }
        out.reserve(k);
        if self.config.attention {
            let total: f64 = nbrs.iter().map(|&(_, w)| w).sum();
            for _ in 0..k {
                let mut x = rng.gen_range(0.0..total);
                let mut pick = *nbrs.last().expect("non-empty");
                for &(n, w) in nbrs {
                    if x < w {
                        pick = (n, w);
                        break;
                    }
                    x -= w;
                }
                out.push(pick);
            }
        } else {
            for _ in 0..k {
                let (n, _) = nbrs[rng.gen_range(0..nbrs.len())];
                out.push((n, 1.0));
            }
        }
    }

    /// Embeds every *sample* node of `graph`, one row per sample, in the
    /// dense sample-id order. Deterministic for a fixed model and config
    /// seed.
    pub fn embed_samples(&self, graph: &BipartiteGraph) -> Matrix {
        self.embed_nodes(graph, &(0..graph.n_samples()).collect::<Vec<_>>())
    }

    /// Embeds an arbitrary set of unified node indices (samples or MACs).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds for `graph`.
    pub fn embed_nodes(&self, graph: &BipartiteGraph, nodes: &[usize]) -> Matrix {
        for &n in nodes {
            assert!(n < graph.n_nodes(), "node {n} out of bounds");
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ 0x1AFE1D);
        let mut out = Matrix::zeros(nodes.len(), self.config.dim);
        // Average several stochastic neighborhood samples, then project
        // back onto the unit sphere; this shrinks the sampling variance of
        // the final representations.
        for _pass in 0..self.config.inference_passes {
            for (chunk_start, chunk) in nodes.chunks(512).enumerate().map(|(i, c)| (i * 512, c)) {
                let mut tape = Tape::new();
                let vars = self.leaves(&mut tape);
                let reps = self.forward(&mut tape, graph, &mut rng, &vars, chunk);
                let values = tape.value(reps);
                for (i, _) in chunk.iter().enumerate() {
                    fis_linalg::vec_ops::axpy(out.row_mut(chunk_start + i), 1.0, values.row(i));
                }
            }
        }
        out.scale(1.0 / self.config.inference_passes as f64)
            .l2_normalize_rows()
    }
}
