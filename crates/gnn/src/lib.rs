//! RF-GNN: attention-based graph neural network for crowdsourced RF signals.
//!
//! Implements §III-B of the FIS-ONE paper:
//!
//! - **Neighbor sampling** proportional to `f(RSS)` — the RSS values act as
//!   attention over edges, so strong readings dominate both the sampled
//!   neighborhood and the aggregation.
//! - **Weighted aggregation** `AGGREGATE_w = Σ_u f(RSS_uv)/Σ f(RSS_u'v) · r_u`
//!   followed by `r_i^k = σ(W_k · CONCAT(r_i^{k-1}, r^k_{N'(i)}))` and per-hop
//!   ℓ2 normalization, for `K` hops.
//! - **Unsupervised training** on length-5 random-walk co-occurrence pairs
//!   with the negative-sampling loss
//!   `L_G = −log σ(r_i·r_j) − τ·E_{z∼Pr(z)} log σ(−r_i·r_z)`,
//!   `τ = 4`, `Pr(z) ∝ d_z^{3/4}`.
//!
//! The no-attention ablation of Figure 8(a,b) (uniform sampling + mean
//! aggregation) is selected with [`RfGnnConfig::attention`].
//!
//! # Example
//!
//! ```no_run
//! use fis_gnn::{RfGnn, RfGnnConfig};
//! use fis_graph::BipartiteGraph;
//! # fn samples() -> Vec<fis_types::SignalSample> { vec![] }
//!
//! let graph = BipartiteGraph::from_samples(&samples())?;
//! let config = RfGnnConfig::new(16).epochs(5).seed(42);
//! let model = RfGnn::train(&graph, &config)?;
//! let embeddings = model.embed_samples(&graph); // one row per signal sample
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod config;
pub mod infer;
pub mod model;
pub mod persist;
pub mod train;

pub use config::RfGnnConfig;
pub use model::RfGnn;
pub use persist::{matrix_from_json, matrix_to_json, matrix_to_json_f32};
pub use train::TrainReport;
