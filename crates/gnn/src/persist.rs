//! JSON (de)serialization of trained RF-GNN models.
//!
//! Follows the whole-model-as-one-artifact idiom: the learned `features`
//! and `W_k` matrices plus the full hyperparameter config serialize into a
//! single [`Json`] object. Numbers go through `fis_types::json`'s
//! shortest-round-trip `f64` codec, so a save → load → save cycle is
//! byte-identical; the RNG `seed` is stored as a decimal *string* because
//! a JSON number (f64) cannot represent every `u64` exactly.

use fis_linalg::Matrix;
use fis_types::json::{FromJson, Json, ToJson};
use fis_types::TypeError;

use crate::config::RfGnnConfig;
use crate::model::RfGnn;

/// Serializes a matrix as `{"rows": r, "cols": c, "data": [...]}` with
/// row-major data.
pub fn matrix_to_json(m: &Matrix) -> Json {
    Json::obj([
        ("rows", Json::Num(m.rows() as f64)),
        ("cols", Json::Num(m.cols() as f64)),
        (
            "data",
            Json::Arr(m.as_slice().iter().map(|&x| Json::Num(x)).collect()),
        ),
    ])
}

/// [`matrix_to_json`] with `f32`-precision entries: each value is
/// narrowed to `f32` and serialized through [`Json::F32`], whose
/// shortest-round-trip decimal is roughly half the length of the `f64`
/// form. Readers recover the stored value exactly by narrowing the
/// re-parsed `f64` (`value as f32`); see the `Json::F32` contract.
/// Only meaningful for matrices whose entries are already exactly
/// `f32`-representable (a quantized model) — otherwise this loses
/// precision by design.
pub fn matrix_to_json_f32(m: &Matrix) -> Json {
    Json::obj([
        ("rows", Json::Num(m.rows() as f64)),
        ("cols", Json::Num(m.cols() as f64)),
        (
            "data",
            Json::Arr(m.as_slice().iter().map(|&x| Json::F32(x as f32)).collect()),
        ),
    ])
}

/// Parses a matrix written by [`matrix_to_json`].
///
/// # Errors
///
/// Returns [`TypeError::Io`] when shape fields are missing or the data
/// length disagrees with `rows * cols`.
pub fn matrix_from_json(value: &Json) -> Result<Matrix, TypeError> {
    let rows = value
        .field("rows")?
        .as_usize()
        .ok_or_else(|| TypeError::Io("matrix rows must be a non-negative integer".to_owned()))?;
    let cols = value
        .field("cols")?
        .as_usize()
        .ok_or_else(|| TypeError::Io("matrix cols must be a non-negative integer".to_owned()))?;
    let raw = value
        .field("data")?
        .as_arr()
        .ok_or_else(|| TypeError::Io("matrix data must be an array".to_owned()))?;
    if raw.len() != rows.saturating_mul(cols) {
        return Err(TypeError::Io(format!(
            "matrix data length {} does not match {rows}x{cols}",
            raw.len()
        )));
    }
    let mut data = Vec::with_capacity(raw.len());
    for v in raw {
        data.push(
            v.as_f64()
                .ok_or_else(|| TypeError::Io("matrix data must be numbers".to_owned()))?,
        );
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

fn usize_field(value: &Json, key: &str) -> Result<usize, TypeError> {
    value
        .field(key)?
        .as_usize()
        .ok_or_else(|| TypeError::Io(format!("`{key}` must be a non-negative integer")))
}

fn bool_field(value: &Json, key: &str) -> Result<bool, TypeError> {
    match value.field(key)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(TypeError::Io(format!("`{key}` must be a boolean"))),
    }
}

impl ToJson for RfGnnConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("dim", Json::Num(self.dim as f64)),
            ("hops", Json::Num(self.hops as f64)),
            (
                "neighbor_samples",
                Json::Arr(
                    self.neighbor_samples
                        .iter()
                        .map(|&s| Json::Num(s as f64))
                        .collect(),
                ),
            ),
            ("walks_per_node", Json::Num(self.walks_per_node as f64)),
            ("walk_length", Json::Num(self.walk_length as f64)),
            ("tau", Json::Num(self.tau as f64)),
            ("epochs", Json::Num(self.epochs as f64)),
            ("batch_pairs", Json::Num(self.batch_pairs as f64)),
            ("learning_rate", Json::Num(self.learning_rate)),
            ("attention", Json::Bool(self.attention)),
            ("train_features", Json::Bool(self.train_features)),
            ("inference_passes", Json::Num(self.inference_passes as f64)),
            ("seed", Json::Str(self.seed.to_string())),
        ])
    }
}

impl FromJson for RfGnnConfig {
    fn from_json(value: &Json) -> Result<Self, TypeError> {
        let dim = usize_field(value, "dim")?;
        if dim == 0 {
            return Err(TypeError::Io("`dim` must be positive".to_owned()));
        }
        let samples_raw = value
            .field("neighbor_samples")?
            .as_arr()
            .ok_or_else(|| TypeError::Io("`neighbor_samples` must be an array".to_owned()))?;
        let mut neighbor_samples = Vec::with_capacity(samples_raw.len());
        for s in samples_raw {
            neighbor_samples.push(s.as_usize().ok_or_else(|| {
                TypeError::Io("`neighbor_samples` entries must be non-negative integers".to_owned())
            })?);
        }
        let seed = value
            .field("seed")?
            .as_str()
            .ok_or_else(|| TypeError::Io("`seed` must be a decimal string".to_owned()))?
            .parse::<u64>()
            .map_err(|_| TypeError::Io("`seed` must be a decimal u64 string".to_owned()))?;
        let config = RfGnnConfig {
            dim,
            hops: usize_field(value, "hops")?,
            neighbor_samples,
            walks_per_node: usize_field(value, "walks_per_node")?,
            walk_length: usize_field(value, "walk_length")?,
            tau: usize_field(value, "tau")?,
            epochs: usize_field(value, "epochs")?,
            batch_pairs: usize_field(value, "batch_pairs")?,
            learning_rate: value
                .field("learning_rate")?
                .as_f64()
                .ok_or_else(|| TypeError::Io("`learning_rate` must be a number".to_owned()))?,
            attention: bool_field(value, "attention")?,
            train_features: bool_field(value, "train_features")?,
            inference_passes: usize_field(value, "inference_passes")?,
            seed,
        };
        config.validate().map_err(TypeError::Io)?;
        Ok(config)
    }
}

impl ToJson for RfGnn {
    fn to_json(&self) -> Json {
        Json::obj([
            ("config", self.config().to_json()),
            ("features", matrix_to_json(self.features())),
            (
                "weights",
                Json::Arr(self.weights().iter().map(matrix_to_json).collect()),
            ),
        ])
    }
}

impl FromJson for RfGnn {
    fn from_json(value: &Json) -> Result<Self, TypeError> {
        let config = RfGnnConfig::from_json(value.field("config")?)?;
        let features = matrix_from_json(value.field("features")?)?;
        let weights_raw = value
            .field("weights")?
            .as_arr()
            .ok_or_else(|| TypeError::Io("`weights` must be an array".to_owned()))?;
        let mut weights = Vec::with_capacity(weights_raw.len());
        for w in weights_raw {
            weights.push(matrix_from_json(w)?);
        }
        RfGnn::from_parts(config, features, weights).map_err(TypeError::Io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fis_graph::BipartiteGraph;
    use fis_synth::BuildingConfig;

    fn trained() -> (BipartiteGraph, RfGnn) {
        let b = BuildingConfig::new("p", 2)
            .samples_per_floor(15)
            .aps_per_floor(5)
            .atrium_aps(0)
            .seed(3)
            .generate();
        let graph = BipartiteGraph::from_samples(b.samples()).unwrap();
        let config = RfGnnConfig::new(8)
            .epochs(2)
            .walks_per_node(2)
            .neighbor_samples(vec![4, 3])
            .seed(u64::MAX - 5); // exercise the >2^53 seed path
        (graph.clone(), RfGnn::train(&graph, &config).unwrap())
    }

    #[test]
    fn model_round_trips_byte_identically() {
        let (_, model) = trained();
        let text = model.to_json_string();
        let back = RfGnn::from_json_str(&text).unwrap();
        assert_eq!(back.config(), model.config());
        assert_eq!(back.features().as_slice(), model.features().as_slice());
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn reloaded_model_embeds_identically() {
        let (graph, model) = trained();
        let back = RfGnn::from_json_str(&model.to_json_string()).unwrap();
        let nodes: Vec<usize> = (0..graph.n_samples()).collect();
        assert_eq!(
            model.infer_nodes(&graph, &nodes).as_slice(),
            back.infer_nodes(&graph, &nodes).as_slice()
        );
    }

    #[test]
    fn matrix_codec_rejects_bad_shapes() {
        assert!(
            matrix_from_json(&Json::parse(r#"{"rows":2,"cols":2,"data":[1,2,3]}"#).unwrap())
                .is_err()
        );
        assert!(matrix_from_json(&Json::parse(r#"{"rows":1,"data":[1]}"#).unwrap()).is_err());
        assert!(RfGnn::from_json_str("{\"config\":{}}").is_err());
    }

    #[test]
    fn config_codec_validates() {
        let mut config = RfGnnConfig::new(4);
        config.seed = u64::MAX;
        let back = RfGnnConfig::from_json_str(&config.to_json_string()).unwrap();
        assert_eq!(back, config);
        // Tampered hop count must be rejected by validate().
        let mut json = config.to_json();
        if let Json::Obj(map) = &mut json {
            map.insert("hops".to_owned(), Json::Num(7.0));
        }
        assert!(RfGnnConfig::from_json(&json).is_err());
    }
}
