//! Structured events, deterministic trace contexts, and spans.
//!
//! A [`TraceContext`] is a `(trace_id, span_id)` pair of 64-bit ids
//! rendered as 16-hex-digit strings. Ids are *deterministic*: they are
//! FNV-1a hashes (with an avalanche finisher, the same construction the
//! router's ring uses) of payload bytes and monotonic sequence numbers —
//! never wall-clock or RNG — so a single-threaded replay of the same
//! input produces the same ids, and concurrent runs still produce
//! collision-resistant, attribution-stable ids.
//!
//! A [`SpanGuard`] (from [`span`], [`span_root`], or [`span_in`])
//! measures a region: it pushes its context on a thread-local stack so
//! nested spans and [`event`]s inherit the trace, and on drop emits one
//! event carrying `dur_ns`. Durations come from [`Instant`] and are the
//! only non-deterministic field — ids and structure replay exactly.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use fis_types::json::Json;

use crate::journal;
use crate::level::{enabled, Level};

/// FNV-1a over `bytes` with a 64-bit avalanche finisher (splitmix64
/// style), matching the router's ring hash construction: plain FNV
/// clusters on short common-prefix keys; the finisher spreads every
/// input bit over the whole output.
pub fn hash64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    avalanche(h)
}

fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// Process-wide monotonic counter feeding root-trace derivation: two
/// identical payloads arriving in sequence still get distinct traces.
static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Trace identity carried across hops: which request (`trace_id`) and
/// which span within it (`span_id`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Stable over the whole request, across every hop.
    pub trace_id: u64,
    /// Identifies one recorded region within the trace.
    pub span_id: u64,
}

impl TraceContext {
    /// Derives a fresh root context from payload bytes and the global
    /// sequence counter. The span id doubles as the root span.
    pub fn root(payload: &[u8]) -> TraceContext {
        let seq = TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
        let trace_id = hash64(payload) ^ avalanche(seq.wrapping_add(1));
        TraceContext {
            trace_id,
            span_id: avalanche(trace_id),
        }
    }

    /// Derives a child span id from this context and a region name; the
    /// `child_seq` disambiguates repeated same-name children.
    pub fn child(self, name: &str, child_seq: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: avalanche(self.span_id ^ hash64(name.as_bytes()) ^ child_seq),
        }
    }

    /// Renders as the wire object `{"trace_id":"<16hex>","span_id":..}`.
    pub fn to_json(self) -> Json {
        Json::obj([
            ("trace_id", Json::Str(format!("{:016x}", self.trace_id))),
            ("span_id", Json::Str(format!("{:016x}", self.span_id))),
        ])
    }

    /// Parses the wire object; `None` when absent or malformed (a bad
    /// trace field must never fail the request it decorates).
    pub fn from_json(v: &Json) -> Option<TraceContext> {
        let trace_id = parse_hex(v.get("trace_id")?.as_str()?)?;
        let span_id = parse_hex(v.get("span_id")?.as_str()?)?;
        Some(TraceContext { trace_id, span_id })
    }
}

fn parse_hex(s: &str) -> Option<u64> {
    (s.len() == 16)
        .then(|| u64::from_str_radix(s, 16).ok())
        .flatten()
}

impl fmt::Display for TraceContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}/{:016x}", self.trace_id, self.span_id)
    }
}

thread_local! {
    /// Innermost-last stack of active spans on this thread, plus a
    /// per-thread child counter for repeated same-name children.
    static CURRENT: RefCell<Vec<TraceContext>> = const { RefCell::new(Vec::new()) };
    static CHILD_SEQ: RefCell<u64> = const { RefCell::new(0) };
}

/// The innermost active span context on this thread, if any. Work
/// handed to other threads (e.g. a parallel fan-out) does *not* inherit
/// it — record such events on the dispatching thread instead.
pub fn current() -> Option<TraceContext> {
    CURRENT.with(|stack| stack.borrow().last().copied())
}

/// Whether an event/span at `level` would reach *any* sink right now
/// (stderr per `FIS_LOG`, or the journal when recording). The hot-path
/// guard: when this is false, builders and spans skip all allocation,
/// hashing, and thread-local work.
pub fn active(level: Level) -> bool {
    enabled(level) || journal::recording()
}

fn next_child_seq() -> u64 {
    CHILD_SEQ.with(|seq| {
        let mut seq = seq.borrow_mut();
        *seq += 1;
        *seq
    })
}

/// One structured observation: severity, origin, name, trace identity,
/// free-form fields, and (for span-close events) a duration.
#[derive(Debug, Clone)]
pub struct Event {
    /// Severity (stderr gating; the journal records every level).
    pub level: Level,
    /// Which subsystem emitted it (`router`, `daemon`, `registry`,
    /// `pipeline`, ...).
    pub component: &'static str,
    /// Event name within the component (`failover`, `assign`, ...).
    pub name: String,
    /// Trace identity, when the event happened inside a span (or was
    /// given one explicitly).
    pub trace: Option<TraceContext>,
    /// Enclosing span id, for reconstructing the span tree.
    pub parent: Option<u64>,
    /// Wall-clock duration for span-close events.
    pub dur_ns: Option<u64>,
    /// Free-form payload fields (insertion-ordered on the builder,
    /// rendered sorted by the JSON codec).
    pub fields: Vec<(String, Json)>,
}

impl Event {
    /// Renders the single-line JSON form shared by the stderr sink and
    /// the journal. Key order is alphabetical (BTreeMap), so identical
    /// events render byte-identically.
    pub fn to_json(&self) -> Json {
        let mut obj: BTreeMap<String, Json> = BTreeMap::new();
        obj.insert("lvl".into(), Json::Str(self.level.as_str().into()));
        obj.insert("component".into(), Json::Str(self.component.into()));
        obj.insert("event".into(), Json::Str(self.name.clone()));
        if let Some(ctx) = self.trace {
            obj.insert("trace".into(), Json::Str(format!("{:016x}", ctx.trace_id)));
            obj.insert("span".into(), Json::Str(format!("{:016x}", ctx.span_id)));
        }
        if let Some(parent) = self.parent {
            obj.insert("parent".into(), Json::Str(format!("{parent:016x}")));
        }
        if let Some(ns) = self.dur_ns {
            obj.insert("dur_ns".into(), Json::Num(ns as f64));
        }
        for (k, v) in &self.fields {
            obj.entry(k.clone()).or_insert_with(|| v.clone());
        }
        Json::Obj(obj)
    }
}

/// Builder returned by [`event`]; finish with [`EventBuilder::emit`].
/// When no sink is active for the event's level, the builder is empty
/// and every method is a no-op — call sites never need their own guard.
#[must_use = "call .emit() to record the event"]
pub struct EventBuilder {
    event: Option<Event>,
}

impl EventBuilder {
    /// Attaches a string field.
    pub fn str(mut self, key: &str, value: impl Into<String>) -> Self {
        if let Some(event) = &mut self.event {
            event.fields.push((key.into(), Json::Str(value.into())));
        }
        self
    }

    /// Attaches a numeric field (counts, sizes, ids).
    pub fn num(mut self, key: &str, value: f64) -> Self {
        if let Some(event) = &mut self.event {
            event.fields.push((key.into(), Json::Num(value)));
        }
        self
    }

    /// Attaches an already-built JSON field.
    pub fn field(mut self, key: &str, value: Json) -> Self {
        if let Some(event) = &mut self.event {
            event.fields.push((key.into(), value));
        }
        self
    }

    /// Overrides the inherited trace context (e.g. a remote context
    /// parsed from a frame, before any local span is open).
    pub fn trace(mut self, ctx: TraceContext) -> Self {
        if let Some(event) = &mut self.event {
            event.trace = Some(ctx);
            event.parent = Some(ctx.span_id);
        }
        self
    }

    /// Records the event: stderr if the level passes `FIS_LOG`, the
    /// journal if recording is on.
    pub fn emit(self) {
        if let Some(event) = self.event {
            dispatch(event);
        }
    }
}

/// Starts a structured event for `component`/`name` at `level`,
/// inheriting the current span's trace identity. Free when no sink is
/// active at this level.
pub fn event(level: Level, component: &'static str, name: &str) -> EventBuilder {
    if !active(level) {
        return EventBuilder { event: None };
    }
    let ctx = current();
    EventBuilder {
        event: Some(Event {
            level,
            component,
            name: name.to_owned(),
            trace: ctx,
            parent: ctx.map(|c| c.span_id),
            dur_ns: None,
            fields: Vec::new(),
        }),
    }
}

fn dispatch(event: Event) {
    let to_stderr = enabled(event.level);
    let to_journal = journal::recording();
    if !to_stderr && !to_journal {
        return;
    }
    let line = event.to_json();
    if to_stderr {
        eprintln!("{line}");
    }
    if to_journal {
        journal::record(line);
    }
}

/// Measures a named region; emits one event with `dur_ns` on drop.
///
/// While the guard lives, [`current`] returns its context on the
/// creating thread, so nested spans/events attach to it. Dropping out
/// of creation order is harmless (the stack pops by identity). When no
/// sink was active at creation, the guard is inert: no hashing, no
/// thread-local traffic, no event on drop.
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

struct SpanInner {
    ctx: TraceContext,
    parent: Option<u64>,
    level: Level,
    component: &'static str,
    name: String,
    start: Instant,
    fields: Vec<(String, Json)>,
}

impl SpanGuard {
    /// Attaches a string field to the span-close event.
    pub fn str(&mut self, key: &str, value: impl Into<String>) -> &mut Self {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key.into(), Json::Str(value.into())));
        }
        self
    }

    /// Attaches a numeric field to the span-close event.
    pub fn num(&mut self, key: &str, value: f64) -> &mut Self {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key.into(), Json::Num(value)));
        }
        self
    }

    /// This span's trace identity (e.g. to forward on the wire), or
    /// `None` for an inert span.
    pub fn context(&self) -> Option<TraceContext> {
        self.inner.as_ref().map(|inner| inner.ctx)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(mut inner) = self.inner.take() else {
            return;
        };
        CURRENT.with(|stack| {
            let mut stack = stack.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|c| *c == inner.ctx) {
                stack.remove(pos);
            }
        });
        dispatch(Event {
            level: inner.level,
            component: inner.component,
            name: std::mem::take(&mut inner.name),
            trace: Some(inner.ctx),
            parent: inner.parent,
            dur_ns: Some(inner.start.elapsed().as_nanos() as u64),
            fields: std::mem::take(&mut inner.fields),
        });
    }
}

fn push_span(
    ctx: TraceContext,
    parent: Option<u64>,
    level: Level,
    component: &'static str,
    name: &str,
) -> SpanGuard {
    CURRENT.with(|stack| stack.borrow_mut().push(ctx));
    SpanGuard {
        inner: Some(SpanInner {
            ctx,
            parent,
            level,
            component,
            name: name.to_owned(),
            start: Instant::now(),
            fields: Vec::new(),
        }),
    }
}

/// Opens a span as a child of the current one, or as a fresh root (of
/// the region name) when no span is active. Inert when no sink is
/// active at `level`.
pub fn span(level: Level, component: &'static str, name: &str) -> SpanGuard {
    if !active(level) {
        return SpanGuard { inner: None };
    }
    match current() {
        Some(parent) => {
            let ctx = parent.child(name, next_child_seq());
            push_span(ctx, Some(parent.span_id), level, component, name)
        }
        None => {
            let ctx = TraceContext::root(name.as_bytes());
            push_span(ctx, None, level, component, name)
        }
    }
}

/// Opens a root span whose trace id derives from `payload` (typically
/// the raw request line), ignoring any active span. Inert when no sink
/// is active at `level`.
pub fn span_root(level: Level, component: &'static str, name: &str, payload: &[u8]) -> SpanGuard {
    if !active(level) {
        return SpanGuard { inner: None };
    }
    let ctx = TraceContext::root(payload);
    push_span(ctx, None, level, component, name)
}

/// Opens a span *inside* a remote context (parsed from a frame's
/// `"trace"` field): same trace id, child span id, remote span as
/// parent — this is how a shard continues the router's trace. Inert
/// when no sink is active at `level`.
pub fn span_in(
    remote: TraceContext,
    level: Level,
    component: &'static str,
    name: &str,
) -> SpanGuard {
    if !active(level) {
        return SpanGuard { inner: None };
    }
    let ctx = remote.child(name, next_child_seq());
    push_span(ctx, Some(remote.span_id), level, component, name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_ids_differ_even_for_identical_payloads() {
        let a = TraceContext::root(b"same");
        let b = TraceContext::root(b"same");
        assert_ne!(a.trace_id, b.trace_id);
    }

    #[test]
    fn child_keeps_trace_id_and_changes_span_id() {
        let root = TraceContext::root(b"req");
        let child = root.child("assign", 1);
        assert_eq!(child.trace_id, root.trace_id);
        assert_ne!(child.span_id, root.span_id);
        // Deterministic: same parent + name + seq => same child.
        assert_eq!(child, root.child("assign", 1));
        assert_ne!(child, root.child("assign", 2));
    }

    #[test]
    fn wire_roundtrip() {
        let ctx = TraceContext {
            trace_id: 0x0123_4567_89ab_cdef,
            span_id: 0xfedc_ba98_7654_3210,
        };
        let json = ctx.to_json();
        assert_eq!(TraceContext::from_json(&json), Some(ctx));
        assert_eq!(
            json.to_string(),
            r#"{"span_id":"fedcba9876543210","trace_id":"0123456789abcdef"}"#
        );
    }

    #[test]
    fn malformed_wire_contexts_are_none() {
        for text in [
            r#"{"trace_id":"xyz","span_id":"0000000000000000"}"#,
            r#"{"trace_id":"00"}"#,
            r#"{"trace_id":7,"span_id":"0000000000000000"}"#,
            "[]",
        ] {
            let v = Json::parse(text).unwrap();
            assert_eq!(TraceContext::from_json(&v), None, "{text}");
        }
    }

    #[test]
    fn span_stack_nests_and_unwinds() {
        // Spans only materialize when a sink is active.
        let _rec = journal::start(1024);
        assert_eq!(current(), None);
        let outer = span(Level::Debug, "test", "outer");
        let outer_ctx = outer.context().unwrap();
        assert_eq!(current(), Some(outer_ctx));
        {
            let inner = span(Level::Debug, "test", "inner");
            assert_eq!(current(), inner.context());
            assert_eq!(inner.context().unwrap().trace_id, outer_ctx.trace_id);
        }
        assert_eq!(current(), Some(outer_ctx));
        drop(outer);
        assert_eq!(current(), None);
    }

    #[test]
    fn span_in_adopts_remote_trace() {
        let _rec = journal::start(1024);
        let remote = TraceContext {
            trace_id: 42,
            span_id: 99,
        };
        let guard = span_in(remote, Level::Debug, "shard", "handle");
        assert_eq!(guard.context().unwrap().trace_id, 42);
        assert_ne!(guard.context().unwrap().span_id, 99);
    }

    #[test]
    fn inert_span_when_no_sink_wants_the_level() {
        // Default stderr level is warn; Trace-level spans with no
        // journal would be inert... but other tests in this process may
        // have recording on, so force the known-off case via levels
        // only when recording is off.
        let before = journal::recording();
        let guard = span(Level::Trace, "test", "quiet");
        if !before && !journal::recording() {
            assert_eq!(guard.context(), None);
            assert_eq!(current(), None);
        }
        drop(guard);
        let builder = event(Level::Trace, "test", "quiet");
        // Builder methods on an inert event are harmless no-ops.
        builder.str("k", "v").num("n", 1.0).emit();
    }

    #[test]
    fn event_json_is_single_line_and_sorted() {
        let mut e = Event {
            level: Level::Warn,
            component: "router",
            name: "failover".into(),
            trace: None,
            parent: None,
            dur_ns: None,
            fields: vec![("shard".into(), Json::Num(2.0))],
        };
        e.fields
            .push(("addr".into(), Json::Str("1.2.3.4:9".into())));
        let text = e.to_json().to_string();
        assert!(!text.contains('\n'));
        assert_eq!(
            text,
            r#"{"addr":"1.2.3.4:9","component":"router","event":"failover","lvl":"warn","shard":2}"#
        );
    }
}
