//! Observability layer: leveled structured events, deterministic trace
//! spans, and a bounded in-process event journal.
//!
//! The workspace's serving fleet (CLI → daemon → sharded router) and the
//! fit pipeline both emit *events* through this crate instead of ad-hoc
//! `eprintln!` lines. An event is a single-line JSON object with a fixed
//! envelope (`lvl`, `component`, `event`, optional `trace`/`span`/
//! `parent`/`dur_ns`, plus free-form fields), so logs are grep-able and
//! machine-parseable. Two independent sinks consume events:
//!
//! - **stderr**, gated by the `FIS_LOG` environment variable
//!   (`error|warn|info|debug|trace`, default `warn`; `off`/`0` silences
//!   everything). [`set_level`] overrides the env for in-process tests.
//! - **the journal**, a process-global bounded ring buffer
//!   ([`journal`]) that callers switch on explicitly (`--trace FILE` on
//!   the CLI/daemon/router) and flush to a JSONL file. When the ring
//!   overflows, the *oldest* events are dropped and the drop count is
//!   reported, so the journal is always bounded.
//!
//! Spans ([`span`], [`SpanGuard`]) measure a named region and emit one
//! event on drop carrying `dur_ns`. Span identity is a deterministic
//! [`TraceContext`] — ids are FNV-1a hashes of payload content and
//! monotonic sequence numbers, never wall-clock or RNG, so a
//! single-threaded replay of the same inputs yields the same ids. The
//! current span is tracked per thread; child spans and events inherit
//! its trace id, and a remote context parsed from a protocol frame can
//! be adopted with [`span_in`] so one request is reconstructable across
//! router → shard → registry hops from the journals alone.
//!
//! Everything here is out-of-band with respect to answers: recording
//! never feeds back into model computation, so predictions are
//! bit-identical with observability on or off (enforced by tests in the
//! workspace root).

pub mod journal;
pub mod level;
pub mod summary;
pub mod trace;

pub use journal::{Journal, JournalHandle};
pub use level::{enabled, level, set_level, Level};
pub use summary::{render_table, summarize, StageSummary};
pub use trace::{
    active, current, event, span, span_in, span_root, Event, EventBuilder, SpanGuard, TraceContext,
};
