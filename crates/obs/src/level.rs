//! Log levels and the `FIS_LOG` environment control.
//!
//! The stderr sink prints an event iff its level is at most the active
//! level. The env var is read once (first use) and cached; tests and
//! embedding binaries can override it programmatically with
//! [`set_level`], which always wins over the environment.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Event severity, ordered from most to least severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Unrecoverable or dropped work (failed connection, load failure).
    Error = 1,
    /// Degraded but continuing (failover, down-marking, transient accept
    /// errors). The default stderr level.
    Warn = 2,
    /// Lifecycle milestones (listening, shutdown, model load).
    Info = 3,
    /// Per-request / per-stage detail.
    Debug = 4,
    /// Everything, including per-epoch and cache-lookup events.
    Trace = 5,
}

impl Level {
    /// The lowercase name used on the wire and in `FIS_LOG`.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    /// Parses a `FIS_LOG` value. `off`/`0`/`none` yield `None`
    /// (silence); unrecognized values fall back to the default so a typo
    /// never turns logging off silently.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => None,
            "error" | "1" => Some(Level::Error),
            "warn" | "warning" | "2" => Some(Level::Warn),
            "info" | "3" => Some(Level::Info),
            "debug" | "4" => Some(Level::Debug),
            "trace" | "5" => Some(Level::Trace),
            _ => Some(DEFAULT_LEVEL),
        }
    }
}

/// Stderr level when `FIS_LOG` is unset.
pub const DEFAULT_LEVEL: Level = Level::Warn;

/// Sentinel meaning "no override installed" in [`OVERRIDE`].
const NO_OVERRIDE: u8 = u8::MAX;
/// Sentinel meaning "silenced" (level off) in both cells.
const OFF: u8 = 0;

/// Env-derived level, read once. `OFF` encodes `FIS_LOG=off`.
static ENV_LEVEL: OnceLock<u8> = OnceLock::new();
/// Programmatic override; `NO_OVERRIDE` defers to the environment.
static OVERRIDE: AtomicU8 = AtomicU8::new(NO_OVERRIDE);

fn env_level() -> u8 {
    *ENV_LEVEL.get_or_init(|| match std::env::var("FIS_LOG") {
        Ok(v) => Level::parse(&v).map_or(OFF, |l| l as u8),
        Err(_) => DEFAULT_LEVEL as u8,
    })
}

fn decode(raw: u8) -> Option<Level> {
    match raw {
        1 => Some(Level::Error),
        2 => Some(Level::Warn),
        3 => Some(Level::Info),
        4 => Some(Level::Debug),
        5 => Some(Level::Trace),
        _ => None,
    }
}

/// The active stderr level, or `None` when silenced.
pub fn level() -> Option<Level> {
    match OVERRIDE.load(Ordering::Relaxed) {
        NO_OVERRIDE => decode(env_level()),
        raw => decode(raw),
    }
}

/// Installs a programmatic level that wins over `FIS_LOG`.
///
/// `set_level(Some(Level::Debug))` forces debug; `set_level(None)`
/// forces silence. Use [`clear_level`] to defer to the environment
/// again. Tests use this to vary the level without touching process-
/// global env vars (which would race across test threads).
pub fn set_level(level: Option<Level>) {
    OVERRIDE.store(level.map_or(OFF, |l| l as u8), Ordering::Relaxed);
}

/// Removes any [`set_level`] override; `FIS_LOG` governs again.
pub fn clear_level() {
    OVERRIDE.store(NO_OVERRIDE, Ordering::Relaxed);
}

/// Whether an event at `lvl` would reach the stderr sink.
pub fn enabled(lvl: Level) -> bool {
    level().is_some_and(|active| lvl <= active)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_names_and_numbers() {
        assert_eq!(Level::parse("error"), Some(Level::Error));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse(" info "), Some(Level::Info));
        assert_eq!(Level::parse("4"), Some(Level::Debug));
        assert_eq!(Level::parse("trace"), Some(Level::Trace));
        assert_eq!(Level::parse("off"), None);
        assert_eq!(Level::parse("0"), None);
        // A typo degrades to the default, never to silence.
        assert_eq!(Level::parse("vrbose"), Some(DEFAULT_LEVEL));
    }

    #[test]
    fn ordering_is_severity_first() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Trace);
    }

    #[test]
    fn override_wins_and_clears() {
        set_level(Some(Level::Trace));
        assert!(enabled(Level::Trace));
        set_level(None);
        assert!(!enabled(Level::Error));
        set_level(Some(Level::Warn));
        assert!(enabled(Level::Error));
        assert!(!enabled(Level::Info));
        clear_level();
    }
}
