//! Process-global bounded event journal.
//!
//! The journal is a ring buffer of rendered events, off by default.
//! Binaries switch it on (`--trace FILE`), run, then flush the retained
//! events as JSONL. The ring is bounded: past capacity the *oldest*
//! events are dropped and counted, so a long-running daemon can record
//! forever in constant memory and the tail — the part you look at after
//! an incident — is always present.
//!
//! Recording is out-of-band with respect to request answers: events are
//! rendered and pushed under a short mutex, never consulted by any
//! computation, so answers are bit-identical with the journal on or off.

use std::collections::VecDeque;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use fis_types::json::Json;

/// Default ring capacity (events retained), sized so a full serve smoke
/// fits without drops while bounding memory to a few MB of JSON.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 65_536;

/// Bounded ring buffer of rendered events with a monotonic sequence.
#[derive(Debug)]
pub struct Journal {
    events: VecDeque<(u64, Json)>,
    capacity: usize,
    /// Next sequence number (also: total events ever recorded).
    seq: u64,
    /// Events evicted by the capacity bound.
    dropped: u64,
}

impl Journal {
    /// Creates an empty journal retaining at most `capacity` events
    /// (minimum 1).
    pub fn new(capacity: usize) -> Journal {
        Journal {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            seq: 0,
            dropped: 0,
        }
    }

    /// Appends one rendered event, evicting the oldest past capacity.
    pub fn push(&mut self, event: Json) {
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((self.seq, event));
        self.seq += 1;
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the capacity bound so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the retained events as JSONL, one event per line, each
    /// stamped with its sequence number as `"seq"`. Oldest first.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (seq, event) in &self.events {
            let mut line = match event {
                Json::Obj(map) => map.clone(),
                other => {
                    let mut map = std::collections::BTreeMap::new();
                    map.insert("event".to_owned(), other.clone());
                    map
                }
            };
            line.insert("seq".to_owned(), Json::Num(*seq as f64));
            out.push_str(&Json::Obj(line).to_string());
            out.push('\n');
        }
        out
    }

    /// Drains and returns the retained events (oldest first), keeping
    /// the sequence counter running.
    pub fn drain(&mut self) -> Vec<Json> {
        self.events.drain(..).map(|(_, e)| e).collect()
    }
}

/// The single process-wide journal behind [`record`]/[`snapshot`].
static GLOBAL: Mutex<Option<Journal>> = Mutex::new(None);
/// Lock-free fast-path flag mirroring `GLOBAL.is_some()`.
static RECORDING: AtomicBool = AtomicBool::new(false);

/// Handle returned by [`start`]; recording stays on until [`stop`] (the
/// handle is a marker, not an RAII guard — flushing at process exit
/// from `Drop` would race daemon worker threads).
#[derive(Debug)]
pub struct JournalHandle(());

/// Turns on global recording with the given ring capacity. If already
/// recording, keeps the existing buffer (and its events).
pub fn start(capacity: usize) -> JournalHandle {
    let mut global = GLOBAL.lock().expect("journal lock");
    if global.is_none() {
        *global = Some(Journal::new(capacity));
    }
    RECORDING.store(true, Ordering::Release);
    JournalHandle(())
}

/// Whether [`record`] currently stores events.
pub fn recording() -> bool {
    RECORDING.load(Ordering::Acquire)
}

/// Records one rendered event into the global journal (no-op when
/// recording is off).
pub fn record(event: Json) {
    if !recording() {
        return;
    }
    if let Some(journal) = GLOBAL.lock().expect("journal lock").as_mut() {
        journal.push(event);
    }
}

/// Renders the retained events as JSONL without stopping recording.
pub fn snapshot() -> String {
    GLOBAL
        .lock()
        .expect("journal lock")
        .as_ref()
        .map(Journal::to_jsonl)
        .unwrap_or_default()
}

/// Stops recording and returns the final journal, if any was active.
pub fn stop() -> Option<Journal> {
    RECORDING.store(false, Ordering::Release);
    GLOBAL.lock().expect("journal lock").take()
}

/// Stops recording and writes the retained events to `path` as JSONL.
/// Returns the number of events written.
///
/// # Errors
///
/// Propagates the underlying file I/O error.
pub fn flush_to(path: &Path) -> std::io::Result<usize> {
    let journal = stop();
    let (text, count) = match &journal {
        Some(j) => (j.to_jsonl(), j.len()),
        None => (String::new(), 0),
    };
    let mut file = std::fs::File::create(path)?;
    file.write_all(text.as_bytes())?;
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_bounds_and_counts_drops() {
        let mut j = Journal::new(3);
        for i in 0..5 {
            j.push(Json::Num(f64::from(i)));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2);
        // Oldest dropped: 0 and 1 are gone, 2..=4 retained in order.
        let kept = j.drain();
        assert_eq!(kept, vec![Json::Num(2.0), Json::Num(3.0), Json::Num(4.0)]);
    }

    #[test]
    fn jsonl_stamps_monotonic_seq() {
        let mut j = Journal::new(2);
        j.push(Json::obj([("event", Json::Str("a".into()))]));
        j.push(Json::obj([("event", Json::Str("b".into()))]));
        j.push(Json::obj([("event", Json::Str("c".into()))]));
        let text = j.to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], r#"{"event":"b","seq":1}"#);
        assert_eq!(lines[1], r#"{"event":"c","seq":2}"#);
    }

    #[test]
    fn empty_journal_renders_empty() {
        assert_eq!(Journal::new(8).to_jsonl(), "");
        assert!(Journal::new(8).is_empty());
    }
}
