//! Journal aggregation: fold a JSONL trace journal into a per-stage
//! table of counts and durations.
//!
//! This is the analysis half of `--trace FILE`: the CLI's
//! `trace summarize` subcommand reads a flushed journal back and renders
//! one row per `(component, event)` pair — how often the stage ran, how
//! many occurrences carried a duration (span-close events do, point
//! events don't), and the total/mean/min/max span time. Aggregation is
//! a pure fold over the file in `BTreeMap` order, so the same journal
//! always renders the same table.

use std::collections::BTreeMap;

use fis_types::json::Json;

/// Aggregate of every journal event sharing one `(component, event)`
/// name pair.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageSummary {
    /// Occurrences of the pair, with or without a duration.
    pub count: u64,
    /// Occurrences carrying `dur_ns` (i.e. span closes).
    pub spans: u64,
    /// Occurrences carrying an `error` field.
    pub errors: u64,
    /// Sum of `dur_ns` over `spans`.
    pub total_ns: u64,
    /// Smallest `dur_ns` seen, if any span closed.
    pub min_ns: Option<u64>,
    /// Largest `dur_ns` seen, if any span closed.
    pub max_ns: Option<u64>,
}

impl StageSummary {
    fn fold(&mut self, dur_ns: Option<u64>, is_error: bool) {
        self.count += 1;
        if is_error {
            self.errors += 1;
        }
        if let Some(ns) = dur_ns {
            self.spans += 1;
            self.total_ns += ns;
            self.min_ns = Some(self.min_ns.map_or(ns, |m| m.min(ns)));
            self.max_ns = Some(self.max_ns.map_or(ns, |m| m.max(ns)));
        }
    }
}

/// Folds a JSONL journal into per-`(component, event)` summaries, in
/// key order. Lines that do not parse as objects are counted under the
/// synthetic pair `("?", "unparseable")` instead of aborting the
/// summary — a truncated flush should still summarize.
pub fn summarize(jsonl: &str) -> BTreeMap<(String, String), StageSummary> {
    let mut stages: BTreeMap<(String, String), StageSummary> = BTreeMap::new();
    for line in jsonl.lines().filter(|l| !l.trim().is_empty()) {
        let (key, dur, is_error) = match Json::parse(line) {
            Ok(json @ Json::Obj(_)) => {
                let field = |k: &str| json.get(k).and_then(Json::as_str).map(str::to_owned);
                let key = (
                    field("component").unwrap_or_else(|| "?".to_owned()),
                    field("event").unwrap_or_else(|| "?".to_owned()),
                );
                let dur = json
                    .get("dur_ns")
                    .and_then(Json::as_f64)
                    .filter(|d| d.is_finite() && *d >= 0.0)
                    .map(|d| d as u64);
                (key, dur, json.get("error").is_some())
            }
            _ => (("?".to_owned(), "unparseable".to_owned()), None, false),
        };
        stages.entry(key).or_default().fold(dur, is_error);
    }
    stages
}

/// Renders the summary as an aligned text table, one stage per row.
/// Stages with no timed occurrence show `-` in the duration columns.
pub fn render_table(stages: &BTreeMap<(String, String), StageSummary>) -> String {
    let ms = |ns: u64| format!("{:.3}", ns as f64 / 1e6);
    let mut rows: Vec<[String; 8]> = vec![[
        "component".into(),
        "event".into(),
        "count".into(),
        "errors".into(),
        "total_ms".into(),
        "mean_ms".into(),
        "min_ms".into(),
        "max_ms".into(),
    ]];
    for ((component, event), s) in stages {
        let timed = s.spans > 0;
        rows.push([
            component.clone(),
            event.clone(),
            s.count.to_string(),
            s.errors.to_string(),
            if timed { ms(s.total_ns) } else { "-".into() },
            if timed {
                ms(s.total_ns / s.spans)
            } else {
                "-".into()
            },
            s.min_ns.map_or_else(|| "-".into(), ms),
            s.max_ns.map_or_else(|| "-".into(), ms),
        ]);
    }
    let mut widths = [0usize; 8];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    for row in &rows {
        let mut line = String::new();
        for (i, (cell, w)) in row.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            // Left-align the name columns, right-align the numbers.
            if i < 2 {
                line.push_str(&format!("{cell:<w$}"));
            } else {
                line.push_str(&format!("{cell:>w$}"));
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_counts_durations_and_errors() {
        let jsonl = concat!(
            r#"{"component":"pipeline","event":"fit","dur_ns":2000000}"#,
            "\n",
            r#"{"component":"pipeline","event":"fit","dur_ns":4000000}"#,
            "\n",
            r#"{"component":"gnn","event":"epoch","epoch":0}"#,
            "\n",
            r#"{"component":"daemon","event":"request","error":"model"}"#,
            "\n",
        );
        let stages = summarize(jsonl);
        let fit = &stages[&("pipeline".to_owned(), "fit".to_owned())];
        assert_eq!((fit.count, fit.spans, fit.total_ns), (2, 2, 6_000_000));
        assert_eq!((fit.min_ns, fit.max_ns), (Some(2_000_000), Some(4_000_000)));
        let epoch = &stages[&("gnn".to_owned(), "epoch".to_owned())];
        assert_eq!((epoch.count, epoch.spans), (1, 0));
        let req = &stages[&("daemon".to_owned(), "request".to_owned())];
        assert_eq!(req.errors, 1);
    }

    #[test]
    fn garbage_lines_are_counted_not_fatal() {
        let stages = summarize("not json\n\n{\"component\":\"a\",\"event\":\"b\"}\n");
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[&("?".to_owned(), "unparseable".to_owned())].count, 1);
    }

    #[test]
    fn table_is_deterministic_and_aligned() {
        let jsonl = concat!(
            r#"{"component":"pipeline","event":"fit","dur_ns":1500000}"#,
            "\n",
            r#"{"component":"gnn","event":"epoch"}"#,
            "\n",
        );
        let a = render_table(&summarize(jsonl));
        let b = render_table(&summarize(jsonl));
        assert_eq!(a, b);
        assert!(a.starts_with("component"), "header first:\n{a}");
        assert!(a.contains("1.500"), "fit total in ms:\n{a}");
        let lines: Vec<&str> = a.lines().collect();
        assert_eq!(lines.len(), 3, "header + two stages:\n{a}");
        // gnn sorts before pipeline.
        assert!(lines[1].starts_with("gnn"), "{a}");
    }
}
