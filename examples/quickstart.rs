//! Quickstart: identify floors in a synthetic building with one label.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use fis_one::{evaluate_building, BuildingConfig, FisOne, FisOneConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-floor building with ~crowdsourced WiFi scans. In a real
    // deployment these records come from phones; here the bundled
    // propagation simulator generates them (see fis-synth).
    let building = BuildingConfig::new("quickstart-tower", 4)
        .samples_per_floor(80)
        .aps_per_floor(12)
        .seed(42)
        .generate();

    // The only supervision FIS-ONE needs: one labeled scan on the bottom
    // floor.
    let anchor = building.bottom_anchor().expect("bottom floor surveyed");
    println!(
        "building: {} floors, {} unlabeled scans, 1 labeled scan ({} on {})",
        building.floors(),
        building.len() - 1,
        anchor.sample,
        anchor.floor
    );

    let fis = FisOne::new(FisOneConfig::default().seed(1));
    let prediction = fis.identify(building.samples(), building.floors(), anchor)?;

    // Per-floor accuracy against the withheld ground truth.
    let mut correct = 0;
    for (pred, truth) in prediction.labels().iter().zip(building.ground_truth()) {
        if pred == truth {
            correct += 1;
        }
    }
    println!(
        "correctly labeled {correct}/{} scans ({:.1}%)",
        building.len(),
        100.0 * correct as f64 / building.len() as f64
    );

    // The paper's three metrics.
    let result = evaluate_building(&fis, &building)?;
    println!(
        "ARI = {:.3}   NMI = {:.3}   edit distance = {:.3}",
        result.ari, result.nmi, result.edit
    );
    Ok(())
}
