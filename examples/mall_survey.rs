//! Mall survey: the paper's motivating scenario — a large shopping mall
//! with an open atrium, heavy signal spillover, and purely crowdsourced
//! scans. Shows intermediate pipeline artifacts: the spillover histogram
//! (Figure 1(b)), the cluster similarity matrix, and the recovered floor
//! ordering.
//!
//! ```bash
//! cargo run --release --example mall_survey
//! ```

use fis_one::core::similarity::{similarity_matrix, ClusterMacProfile};
use fis_one::{BuildingConfig, FisOne, FisOneConfig, SimilarityMethod};
use fis_one::types::stats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mall = BuildingConfig::new("harbour-mall", 6)
        .samples_per_floor(100)
        .aps_per_floor(16)
        .atrium_aps(3)
        .footprint(120.0, 90.0)
        .seed(7)
        .generate();

    // Figure 1(b) for this mall: how many floors each MAC is detected on.
    let hist = stats::mac_floor_span_histogram(&mall);
    println!("MAC floor-span histogram ({} MACs total):", stats::total_macs(&mall));
    for (span, count) in hist.iter().enumerate() {
        println!("  {} floor(s): {}", span + 1, "#".repeat(*count / 2));
    }
    let (adjacent, far) = stats::spillover_contrast(&mall, 3);
    println!("shared MACs: adjacent floors {adjacent:.1} vs distant floors {far:.1}\n");

    // Run the pipeline.
    let anchor = mall.bottom_anchor().expect("ground floor surveyed");
    let fis = FisOne::new(FisOneConfig::default().seed(3));
    let prediction = fis.identify(mall.samples(), mall.floors(), anchor)?;

    // Show the spillover similarity the cluster indexing solved over.
    let profiles =
        ClusterMacProfile::from_assignment(mall.samples(), prediction.assignment(), mall.floors());
    let sim = similarity_matrix(SimilarityMethod::AdaptedJaccard, &profiles);
    println!("adapted Jaccard similarity between clusters:");
    for row in &sim {
        let cells: Vec<String> = row.iter().map(|s| format!("{s:.2}")).collect();
        println!("  [{}]", cells.join(", "));
    }

    println!(
        "\nrecovered bottom-to-top cluster order: {:?}",
        prediction.cluster_order()
    );
    let per_floor: Vec<usize> = (0..mall.floors())
        .map(|f| {
            prediction
                .labels()
                .iter()
                .zip(mall.ground_truth())
                .filter(|(p, t)| p.index() == f && p == t)
                .count()
        })
        .collect();
    println!("correct labels per floor: {per_floor:?}");
    Ok(())
}
