//! Mall survey: the paper's motivating scenario — large shopping malls
//! with open atriums, heavy signal spillover, and purely crowdsourced
//! scans. A small chain of three malls is evaluated **concurrently**
//! through the batch [`FisEngine`], then the flagship mall's pipeline
//! artifacts are shown: the spillover histogram (Figure 1(b)), the
//! cluster similarity matrix, and the recovered floor ordering.
//!
//! ```bash
//! cargo run --release --example mall_survey
//! FIS_THREADS=1 cargo run --release --example mall_survey   # serial
//! ```

use fis_one::core::similarity::{similarity_matrix, ClusterMacProfile};
use fis_one::core::{EngineConfig, FisEngine};
use fis_one::types::stats;
use fis_one::{BuildingConfig, Dataset, FisOneConfig, SimilarityMethod};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three malls of one chain, surveyed independently.
    let malls: Vec<_> = [("harbour-mall", 6), ("airport-mall", 5), ("garden-mall", 4)]
        .into_iter()
        .enumerate()
        .map(|(i, (name, floors))| {
            BuildingConfig::new(name, floors)
                .samples_per_floor(100)
                .aps_per_floor(16)
                .atrium_aps(3)
                .footprint(120.0, 90.0)
                .seed(7 + i as u64)
                .generate()
        })
        .collect();
    let corpus = Dataset::new("mall-chain", malls);

    // Figure 1(b) for the flagship mall: floors-per-MAC histogram.
    let flagship = &corpus.buildings()[0];
    let hist = stats::mac_floor_span_histogram(flagship);
    println!(
        "MAC floor-span histogram ({} MACs total):",
        stats::total_macs(flagship)
    );
    for (span, count) in hist.iter().enumerate() {
        println!("  {} floor(s): {}", span + 1, "#".repeat(*count / 2));
    }
    let (adjacent, far) = stats::spillover_contrast(flagship, 3);
    println!("shared MACs: adjacent floors {adjacent:.1} vs distant floors {far:.1}\n");

    // Run the whole chain through the batch engine.
    let engine = FisEngine::new(EngineConfig::default().pipeline(FisOneConfig::default().seed(3)));
    let report = engine.evaluate_corpus(&corpus);
    println!(
        "evaluated {} malls in {:.2?} on {} threads (cpu {:.2?}, speedup {:.2}x)\n",
        report.runs.len(),
        report.wall,
        report.threads,
        report.cpu_time(),
        report.cpu_time().as_secs_f64() / report.wall.as_secs_f64().max(1e-9),
    );
    for (run, outcome) in report.successes() {
        let scores = outcome.eval.expect("evaluate_corpus scores successes");
        println!(
            "  {:<14} {} floors  ARI {:.3}  NMI {:.3}  edit {:.3}  ({:.2?})",
            run.building, run.floors, scores.ari, scores.nmi, scores.edit, run.elapsed
        );
    }

    // Show the spillover similarity the flagship's indexing solved over.
    let (_, flagship_outcome) = report
        .successes()
        .find(|(run, _)| run.building == flagship.name())
        .ok_or("flagship mall failed")?;
    let prediction = &flagship_outcome.prediction;
    let profiles = ClusterMacProfile::from_assignment(
        flagship.samples(),
        prediction.assignment(),
        flagship.floors(),
    );
    let sim = similarity_matrix(SimilarityMethod::AdaptedJaccard, &profiles);
    println!(
        "\nadapted Jaccard similarity between {} clusters:",
        flagship.name()
    );
    for row in &sim {
        let cells: Vec<String> = row.iter().map(|s| format!("{s:.2}")).collect();
        println!("  [{}]", cells.join(", "));
    }

    println!(
        "\nrecovered bottom-to-top cluster order: {:?}",
        prediction.cluster_order()
    );
    let per_floor: Vec<usize> = (0..flagship.floors())
        .map(|f| {
            prediction
                .labels()
                .iter()
                .zip(flagship.ground_truth())
                .filter(|(p, t)| p.index() == f && p == t)
                .count()
        })
        .collect();
    println!("correct labels per floor: {per_floor:?}");
    Ok(())
}
