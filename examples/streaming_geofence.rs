//! Streaming geofence: train once, then label *new* incoming scans with
//! the inductive RF-GNN — the dynamic-graph capability the paper gives as
//! the reason to prefer a GNN over static embeddings (new RF signals keep
//! arriving in crowdsourced deployments).
//!
//! A geofence watches for devices entering a restricted floor.
//!
//! ```bash
//! cargo run --release --example streaming_geofence
//! ```

use fis_one::cluster::cluster_members;
use fis_one::graph::BipartiteGraph;
use fis_one::linalg::vec_ops;
use fis_one::{BuildingConfig, FisOne, FisOneConfig, FloorId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Historical crowdsourced corpus for the building.
    let building = BuildingConfig::new("hq", 4)
        .samples_per_floor(80)
        .aps_per_floor(12)
        .seed(21)
        .generate();
    let anchor = building.bottom_anchor().expect("bottom surveyed");
    let restricted = FloorId::from_index(3);

    // Offline phase: identify floors for the historical corpus.
    let fis = FisOne::new(FisOneConfig::default().seed(4));
    let (assignment, embeddings) = fis.cluster_samples(building.samples(), building.floors())?;
    let prediction =
        fis.index_assignment(building.samples(), &assignment, building.floors(), anchor)?;
    println!(
        "offline corpus labeled; restricted floor is {restricted} (cluster {})",
        prediction
            .floor_of_cluster()
            .iter()
            .position(|&f| f == restricted.index())
            .expect("floor exists")
    );

    let _ = embeddings; // offline embeddings served the clustering above

    // Online phase: new scans stream in. We simulate them as a fresh
    // batch from the same building, append them to the graph, and embed
    // everything in one shared space with a model trained on the combined
    // graph (the labels of the historical corpus are already fixed).
    let fresh = BuildingConfig::new("hq-live", 4)
        .samples_per_floor(5)
        .aps_per_floor(12)
        .seed(21) // same building layout: the AP placement matches
        .generate();

    // Combine historical + new samples into one graph (new scans get new
    // dense ids appended after the corpus).
    let mut all = building.samples().to_vec();
    for s in fresh.samples() {
        all.push(s.clone().with_id(all.len() as u32));
    }
    let graph = BipartiteGraph::from_samples(&all)?;
    let model = fis_one::RfGnn::train(&graph, &fis.config().gnn)?;

    // Per-cluster centroids in the *combined* embedding space, computed
    // from the historical samples whose floors we just identified.
    let historical: Vec<usize> = (0..building.len()).collect();
    let hist_emb = model.embed_nodes(&graph, &historical);
    let members = cluster_members(prediction.assignment());
    let centroids: Vec<Vec<f64>> = members
        .iter()
        .map(|m| {
            let mut c = vec![0.0; hist_emb.cols()];
            for &i in m {
                vec_ops::axpy(&mut c, 1.0, hist_emb.row(i));
            }
            vec_ops::scale(&mut c, 1.0 / m.len().max(1) as f64);
            c
        })
        .collect();

    let mut alerts = 0;
    for (offset, truth) in fresh.ground_truth().iter().enumerate() {
        let node = building.len() + offset;
        let emb = model.embed_nodes(&graph, &[node]);
        let nearest = centroids
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                vec_ops::euclidean(emb.row(0), a)
                    .partial_cmp(&vec_ops::euclidean(emb.row(0), b))
                    .expect("finite distances")
            })
            .map(|(c, _)| c)
            .expect("at least one cluster");
        let floor = FloorId::from_index(prediction.floor_of_cluster()[nearest]);
        let mark = if floor == restricted { "ALERT" } else { "ok" };
        if floor == restricted {
            alerts += 1;
        }
        println!("live scan {offset}: predicted {floor} (truth {truth}) {mark}");
    }
    println!(
        "{alerts} geofence alert(s) raised out of {} live scans",
        fresh.len()
    );
    Ok(())
}
