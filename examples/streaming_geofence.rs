//! Streaming geofence: fit once, serve forever.
//!
//! The paper's reason to prefer an inductive RF-GNN over static
//! embeddings is that crowdsourced RF signals keep arriving. This example
//! shows the first-class serve path: [`FisOne::fit`] builds a
//! [`FittedModel`] artifact, the artifact round-trips through disk like a
//! deployed model would, and live scans are labeled with
//! [`FittedModel::assign_stream`] — a K-hop embedding plus a 1-NN lookup
//! per scan instead of retraining the whole pipeline, with no reaching
//! into pipeline internals.
//!
//! A geofence watches for devices entering a restricted floor.
//!
//! ```bash
//! cargo run --release --example streaming_geofence
//! ```

use fis_one::{BuildingConfig, FisOne, FisOneConfig, FittedModel, FloorId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Historical crowdsourced corpus for the building.
    let building = BuildingConfig::new("hq", 4)
        .samples_per_floor(80)
        .aps_per_floor(12)
        .seed(21)
        .generate();
    let anchor = building.bottom_anchor().expect("bottom surveyed");
    let restricted = FloorId::from_index(3);

    // Offline phase: fit the pipeline once and persist the whole model
    // (GNN weights, MAC vocabulary, centroids, floor ordering) as one
    // JSON artifact.
    let fis = FisOne::new(FisOneConfig::default().seed(4));
    let model = fis.fit(
        building.name(),
        building.samples(),
        building.floors(),
        anchor,
    )?;
    let dir = std::env::temp_dir().join("fis_streaming_geofence");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("hq-model.json");
    model.save(&path)?;
    println!(
        "fitted `{}`: {} floors, {} training scans, {} MACs -> {} ({} bytes)",
        model.building(),
        model.floors(),
        model.samples().len(),
        model.macs().len(),
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    // A serving process starts by loading the artifact back; assignments
    // are bit-identical to the in-memory model's.
    let served = FittedModel::load(&path)?;

    // Online phase: new scans stream in from the same building (same seed
    // -> same AP placement, so the live MACs are in the vocabulary).
    let fresh = BuildingConfig::new("hq-live", 4)
        .samples_per_floor(5)
        .aps_per_floor(12)
        .seed(21)
        .generate();
    let results = served.assign_stream(fresh.samples(), 0);

    let mut alerts = 0;
    let mut correct = 0;
    for ((scan, truth), outcome) in fresh
        .samples()
        .iter()
        .zip(fresh.ground_truth())
        .zip(&results)
    {
        match outcome {
            Ok(floor) => {
                let mark = if *floor == restricted { "ALERT" } else { "ok" };
                if *floor == restricted {
                    alerts += 1;
                }
                if floor == truth {
                    correct += 1;
                }
                println!(
                    "live scan {}: predicted {floor} (truth {truth}) {mark}",
                    scan.id()
                );
            }
            Err(e) => println!("live scan {}: unassignable ({e})", scan.id()),
        }
    }
    println!(
        "{alerts} geofence alert(s) raised out of {} live scans ({correct} labeled correctly)",
        fresh.len()
    );
    Ok(())
}
