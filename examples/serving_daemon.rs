//! Walkthrough of the multi-tenant serving daemon (`fis-serve`).
//!
//! ```bash
//! cargo run --release --example serving_daemon
//! ```
//!
//! Fits two small buildings, stages their artifacts in a model
//! directory, then drives the daemon through the exact NDJSON protocol
//! `fis-one serve` speaks on stdin/stdout — lazy loads, a batch assign,
//! an eviction + deterministic reload, a typed error, stats, shutdown.
//! The in-memory transport here and the pipe/TCP transports of the CLI
//! share one dispatch path, so what this example prints is what a real
//! client sees on the wire.

use fis_one::types::json::{Json, ToJson};
use fis_one::{BuildingConfig, Daemon, DaemonConfig, FisOne, FisOneConfig, RegistryConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Fit two tenants and stage their artifacts as <dir>/<id>.json —
    //    exactly what `fis-one fit --out models/<id>.json` produces.
    let dir = std::env::temp_dir().join(format!("fis_serving_daemon_{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;
    let mut tenants = Vec::new();
    for (name, seed) in [("hq", 1u64), ("mall", 2u64)] {
        let building = BuildingConfig::new(name, 3)
            .samples_per_floor(20)
            .aps_per_floor(8)
            .atrium_aps(0)
            .seed(seed)
            .generate();
        let model = FisOne::new(FisOneConfig::quick(seed)).fit(
            building.name(),
            building.samples(),
            building.floors(),
            building.bottom_anchor().expect("bottom floor surveyed"),
        )?;
        model.save(dir.join(format!("{name}.json")))?;
        println!("fitted tenant `{name}` ({} scans)", building.len());
        tenants.push(building);
    }

    // 2. A daemon over the directory: cache capped at one model so the
    //    second tenant forces an LRU eviction.
    let daemon = Daemon::new(DaemonConfig::new(RegistryConfig::new(&dir).max_models(1)));

    // 3. Drive the wire protocol.
    let hq_scan = tenants[0].samples()[0].to_json();
    let mall_scans: Vec<Json> = tenants[1].samples()[..5]
        .iter()
        .map(|s| s.to_json())
        .collect();
    let script = [
        // Lazy load on first touch.
        Json::obj([
            ("op", Json::Str("assign".into())),
            ("building", Json::Str("hq".into())),
            ("scan", hq_scan.clone()),
            ("id", Json::Num(1.0)),
        ]),
        // Second tenant: loads, and evicts `hq` (max_models = 1).
        Json::obj([
            ("op", Json::Str("assign_batch".into())),
            ("building", Json::Str("mall".into())),
            ("scans", Json::Arr(mall_scans)),
            ("id", Json::Num(2.0)),
        ]),
        // `hq` again: reloaded from disk, answer bit-identical to id 1.
        Json::obj([
            ("op", Json::Str("assign".into())),
            ("building", Json::Str("hq".into())),
            ("scan", hq_scan),
            ("id", Json::Num(3.0)),
        ]),
        // A tenant that does not exist: typed error, daemon keeps going.
        Json::obj([
            ("op", Json::Str("load".into())),
            ("building", Json::Str("ghost-tower".into())),
            ("id", Json::Num(4.0)),
        ]),
        Json::obj([("op", Json::Str("stats".into())), ("id", Json::Num(5.0))]),
        Json::obj([("op", Json::Str("shutdown".into()))]),
    ]
    .map(|j| j.to_string())
    .join("\n");

    let mut responses = Vec::new();
    let shutdown = daemon.serve_connection(script.as_bytes(), &mut responses)?;
    assert!(shutdown, "script ends with a shutdown request");

    println!("\n--- wire transcript ---");
    let responses = String::from_utf8(responses)?;
    let mut floors = Vec::new();
    for (request, response) in script.lines().zip(responses.lines()) {
        let shown = if request.len() > 96 {
            format!("{}…", &request[..96])
        } else {
            request.to_owned()
        };
        println!(">> {shown}");
        let json = Json::parse(response)?;
        match json.get("id").and_then(Json::as_usize) {
            Some(1) | Some(3) => {
                let floor = json.get("floor").unwrap().as_usize().unwrap();
                floors.push(floor);
                println!("<< floor {floor} (ok={})", json.get("ok").unwrap());
            }
            Some(4) => println!(
                "<< typed error: {}",
                json.get("error").unwrap().get("kind").unwrap()
            ),
            Some(5) => {
                let registry = json.get("stats").unwrap().get("registry").unwrap();
                println!(
                    "<< stats: evictions={} misses={} (cache capped at 1 model)",
                    registry.get("evictions").unwrap(),
                    registry.get("misses").unwrap()
                );
            }
            _ => println!("<< {response}"),
        }
    }
    assert_eq!(
        floors[0], floors[1],
        "evict + reload must not change the answer"
    );
    println!(
        "\nsame scan before and after eviction → floor {} both times (deterministic reload)",
        floors[0]
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
