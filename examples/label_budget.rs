//! Label budget: what does the single label buy, and where can it come
//! from? Compares (a) the bottom-floor anchor, (b) a top-floor anchor,
//! (c) an arbitrary mid-floor anchor via the §VI extension, including the
//! ambiguous middle-floor case.
//!
//! ```bash
//! cargo run --release --example label_budget
//! ```

use fis_one::core::evaluate::score_prediction;
use fis_one::{
    identify_with_arbitrary_anchor, ArbitraryAnchorOutcome, BuildingConfig, FisOne, FisOneConfig,
    FloorId,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let building = BuildingConfig::new("office-block", 5)
        .samples_per_floor(80)
        .aps_per_floor(12)
        .seed(11)
        .generate();
    let fis = FisOne::new(FisOneConfig::default().seed(2));

    // (a) The paper's core setting: bottom-floor anchor.
    let bottom = building.bottom_anchor().expect("bottom surveyed");
    let pred = fis.identify(building.samples(), building.floors(), bottom)?;
    let res = score_prediction(&pred, &building)?;
    println!(
        "bottom anchor : ARI {:.3}  NMI {:.3}  edit {:.3}",
        res.ari, res.nmi, res.edit
    );

    // (b) Top-floor anchor: same machinery, reversed orientation.
    let top = building
        .anchor_on(FloorId::from_index(building.floors() - 1))
        .expect("top surveyed");
    let pred = fis.identify(building.samples(), building.floors(), top)?;
    let res = score_prediction(&pred, &building)?;
    println!(
        "top anchor    : ARI {:.3}  NMI {:.3}  edit {:.3}",
        res.ari, res.nmi, res.edit
    );

    // (c) Arbitrary floors via the §VI extension. Floor 3 of 5 is the
    // unresolvable middle (Case 1); the others resolve (Case 2).
    for floor_idx in [1usize, 2, 3] {
        let anchor = building
            .anchor_on(FloorId::from_index(floor_idx))
            .expect("floor surveyed");
        match identify_with_arbitrary_anchor(&fis, building.samples(), building.floors(), anchor)? {
            ArbitraryAnchorOutcome::Resolved(pred) => {
                let res = score_prediction(&pred, &building)?;
                println!(
                    "anchor on {}  : ARI {:.3}  NMI {:.3}  edit {:.3}  (resolved)",
                    anchor.floor, res.ari, res.nmi, res.edit
                );
            }
            ArbitraryAnchorOutcome::Ambiguous { order, .. } => {
                println!(
                    "anchor on {}  : ambiguous (middle floor of an odd building); \
                     unoriented order {order:?}",
                    anchor.floor
                );
            }
        }
    }
    Ok(())
}
