//! `fis-one` command-line interface.
//!
//! ```text
//! fis-one generate --floors 5 --samples 200 --seed 7 --out corpus.jsonl
//! fis-one identify --corpus corpus.jsonl [--building NAME]
//! fis-one evaluate --corpus corpus.jsonl
//! fis-one stats    --corpus corpus.jsonl
//! ```
//!
//! `generate` synthesizes a building corpus; `identify` runs the pipeline
//! with each building's bottom-floor anchor and prints per-sample floors;
//! `evaluate` scores against the stored ground truth; `stats` prints the
//! spillover statistics behind Figure 1.

use std::collections::HashMap;
use std::process::ExitCode;

use fis_one::types::io;
use fis_one::{evaluate_building, BuildingConfig, Dataset, FisOne, FisOneConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&opts),
        "identify" => cmd_identify(&opts),
        "evaluate" => cmd_evaluate(&opts),
        "stats" => cmd_stats(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  fis-one generate --floors N --samples M [--seed S] [--name NAME] --out FILE
  fis-one identify --corpus FILE [--building NAME] [--seed S]
  fis-one evaluate --corpus FILE [--seed S]
  fis-one stats    --corpus FILE";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(key) = flag.strip_prefix("--") else {
            return Err(format!("expected --flag, got `{flag}`"));
        };
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        map.insert(key.to_owned(), value.clone());
    }
    Ok(map)
}

fn get<'a>(opts: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{key}"))
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: `{s}`"))
}

fn load(opts: &HashMap<String, String>) -> Result<Dataset, String> {
    let path = get(opts, "corpus")?;
    io::load_jsonl(path).map_err(|e| e.to_string())
}

fn pipeline(opts: &HashMap<String, String>) -> Result<FisOne, String> {
    let seed = opts
        .get("seed")
        .map(|s| parse::<u64>(s, "seed"))
        .transpose()?
        .unwrap_or(0);
    Ok(FisOne::new(FisOneConfig::default().seed(seed)))
}

fn cmd_generate(opts: &HashMap<String, String>) -> Result<(), String> {
    let floors: usize = parse(get(opts, "floors")?, "floor count")?;
    let samples: usize = parse(get(opts, "samples")?, "sample count")?;
    let seed = opts
        .get("seed")
        .map(|s| parse::<u64>(s, "seed"))
        .transpose()?
        .unwrap_or(0);
    let name = opts.get("name").cloned().unwrap_or_else(|| "building".into());
    let out = get(opts, "out")?;
    if floors == 0 || samples == 0 {
        return Err("floors and samples must be positive".into());
    }
    let building = BuildingConfig::new(name, floors)
        .samples_per_floor(samples)
        .seed(seed)
        .generate();
    let ds = Dataset::new("cli", vec![building]);
    io::save_jsonl(&ds, out).map_err(|e| e.to_string())?;
    println!("wrote {out} ({floors} floors x {samples} samples)");
    Ok(())
}

fn cmd_identify(opts: &HashMap<String, String>) -> Result<(), String> {
    let ds = load(opts)?;
    let fis = pipeline(opts)?;
    let wanted = opts.get("building");
    for b in ds.buildings() {
        if let Some(name) = wanted {
            if b.name() != *name {
                continue;
            }
        }
        let anchor = b
            .bottom_anchor()
            .ok_or_else(|| format!("{} has no bottom-floor sample", b.name()))?;
        let prediction = fis
            .identify(b.samples(), b.floors(), anchor)
            .map_err(|e| e.to_string())?;
        println!("# {} ({} floors)", b.name(), b.floors());
        for (sample, floor) in b.samples().iter().zip(prediction.labels()) {
            println!("{} {floor}", sample.id());
        }
    }
    Ok(())
}

fn cmd_evaluate(opts: &HashMap<String, String>) -> Result<(), String> {
    let ds = load(opts)?;
    let fis = pipeline(opts)?;
    println!("{:<20} {:>7} {:>7} {:>7}", "building", "ARI", "NMI", "edit");
    for b in ds.buildings() {
        let r = evaluate_building(&fis, b).map_err(|e| e.to_string())?;
        println!(
            "{:<20} {:>7.3} {:>7.3} {:>7.3}",
            b.name(),
            r.ari,
            r.nmi,
            r.edit
        );
    }
    Ok(())
}

fn cmd_stats(opts: &HashMap<String, String>) -> Result<(), String> {
    let ds = load(opts)?;
    for b in ds.buildings() {
        let hist = fis_one::types::stats::mac_floor_span_histogram(b);
        let (adj, far) = fis_one::types::stats::spillover_contrast(b, 3);
        println!(
            "{}: {} floors, {} samples, {} MACs, span histogram {:?}, \
             shared MACs adjacent {:.1} vs distant {:.1}",
            b.name(),
            b.floors(),
            b.len(),
            fis_one::types::stats::total_macs(b),
            hist,
            adj,
            far
        );
    }
    Ok(())
}
