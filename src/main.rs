//! `fis-one` command-line interface.
//!
//! ```text
//! fis-one generate --floors 5 --samples 200 --seed 7 --buildings 8 --out corpus.jsonl
//! fis-one identify --corpus corpus.jsonl [--building NAME]
//! fis-one evaluate --corpus corpus.jsonl
//! fis-one fit      --corpus corpus.jsonl --out model.json [--trace trace.jsonl] [--f32]
//! fis-one assign   --model model.json --scans corpus.jsonl
//! fis-one extend   --model model.json --scans drift.jsonl --out model-v2.json
//! fis-one serve    --models DIR [--tcp ADDR] [--trace trace.jsonl] [--metrics m.prom]
//! fis-one stats    --corpus corpus.jsonl
//! fis-one trace    summarize trace.jsonl
//! ```
//!
//! `generate` synthesizes a corpus of one or more buildings
//! (`--buildings N` emits `NAME-0` … `NAME-{N-1}`, each reseeded with
//! `seed + i` so the corpora are distinct); `identify` runs the pipeline
//! with each building's bottom-floor anchor and prints per-sample floors;
//! `evaluate` scores against the stored ground truth; `fit` persists a
//! serving artifact and `assign` labels scans against it without
//! refitting; `extend` grows a fitted artifact with freshly collected
//! scans — new MAC vocabulary included — without refitting and without
//! changing any answer the base model would give; `serve` runs the
//! long-lived multi-tenant daemon over a
//! directory of fitted artifacts; `stats` prints the spillover
//! statistics behind Figure 1.

use std::collections::HashMap;
use std::io::Write;
use std::process::ExitCode;

use fis_one::core::{EngineConfig, FisEngine};
use fis_one::types::io;
use fis_one::{BuildingConfig, Dataset, FisOneConfig, FittedModel};
use fis_serve::{Daemon, DaemonConfig, RegistryConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    // `trace` takes a positional subcommand, not --flag pairs.
    if command == "trace" {
        return match cmd_trace(rest) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let opts = match parse_flags(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match command.as_str() {
        "generate" => cmd_generate(&opts),
        "identify" => cmd_identify(&opts),
        "evaluate" => cmd_evaluate(&opts),
        "fit" => cmd_fit(&opts),
        "assign" => cmd_assign(&opts),
        "extend" => cmd_extend(&opts),
        "serve" => cmd_serve(&opts),
        "stats" => cmd_stats(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  fis-one generate --floors N --samples M [--seed S] [--name NAME] \
[--buildings B] --out FILE
  fis-one identify --corpus FILE [--building NAME] [--seed S] [--threads T]
  fis-one evaluate --corpus FILE [--seed S] [--threads T]
  fis-one fit      --corpus FILE --out FILE [--building NAME] [--seed S] \
[--threads T] [--trace FILE] [--f32]
  fis-one assign   --model FILE --scans FILE [--building NAME] [--threads T] \
[--out FILE]
  fis-one extend   --model FILE --scans FILE [--building NAME] --out FILE
  fis-one serve    --models DIR [--tcp ADDR] [--pool W] [--max-models N] \
[--max-bytes B] [--max-batch K] [--threads T] [--assign-cache C] \
[--trace FILE] [--metrics FILE]
  fis-one stats    --corpus FILE
  fis-one trace    summarize FILE

generate writes a corpus of --buildings B buildings (default 1). With
B = 1 the single building is named NAME; with B > 1 they are named
NAME-0 .. NAME-(B-1) and building i is reseeded with seed S + i, so
every building gets a distinct corpus.

identify and evaluate run all buildings of the corpus concurrently;
--threads (or FIS_THREADS) caps the worker budget, default = all cores.
Predictions are bit-identical for any thread count at a fixed seed.

fit persists one building's pipeline output as a serving artifact
(one JSON document). --f32 writes the quantized schema-v3 artifact
instead: every parameter rounds to f32 at save time, shrinking the
file to roughly half while keeping identical floor labels on the
training corpus; f32 artifacts are frozen (extend refuses them).
assign labels scans against it without refitting
(--building restricts a multi-building scan file to one building),
printing the same format as identify so the two can be diffed; --out
writes those assignment lines to FILE instead of stdout.

extend grows a fitted artifact with freshly collected scans without
refitting: scans carrying at least one base-vocabulary MAC are labeled
by the frozen base model and appended, new MACs enter the extended
vocabulary, and scans with no base overlap are skipped. Assignments
the base model could answer are bit-identical before and after, and
the extended artifact bytes depend only on (base artifact, scans) —
extending the same inputs anywhere yields the same file.

serve runs the long-lived multi-tenant daemon over a directory of
fitted artifacts (DIR/<building>.json, lazy-loaded, LRU-evicted,
hot-reloaded on change), speaking newline-delimited JSON on
stdin/stdout, or on a TCP listener with --tcp HOST:PORT. TCP mode
serves connections concurrently on a bounded pool of --pool W worker
threads (default: one per core, clamped to 2..=8).
--assign-cache C keeps up to C recent answers per model, keyed by
scan content — answers are bit-identical with the cache on or off.
Frames with \"v\":2 additionally unlock the mutation ops extend (grow
a served model in place, atomically republished) and swap (evict and
reload an artifact as one step); plain v1 frames are answered
byte-for-byte as before versioning existed.
Send {\"op\":\"shutdown\"} for a clean stop; final stats go to stderr.
A sharded front tier for multi-daemon fleets ships as the separate
fis-router binary (see crates/serve).

Observability: --trace FILE (on fit and serve) records pipeline and
request spans to a bounded in-memory journal and flushes it to FILE
as JSONL on exit; `trace summarize FILE` folds such a journal into a
per-stage count/duration table. serve --metrics FILE dumps the
daemon's metrics in Prometheus text format on exit (the same text the
v2 `metrics` op returns live). FIS_LOG=error|warn|info|debug|trace
sets stderr verbosity (default warn). Recording is out-of-band:
answers are bit-identical with observability on or off.";

/// Flags that take no value; present means enabled.
const BOOLEAN_FLAGS: &[&str] = &["f32"];

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(key) = flag.strip_prefix("--") else {
            return Err(format!("expected --flag, got `{flag}`"));
        };
        if BOOLEAN_FLAGS.contains(&key) {
            map.insert(key.to_owned(), "1".to_owned());
            continue;
        }
        let value = it
            .next()
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        map.insert(key.to_owned(), value.clone());
    }
    Ok(map)
}

fn get<'a>(opts: &'a HashMap<String, String>, key: &str) -> Result<&'a str, String> {
    opts.get(key)
        .map(String::as_str)
        .ok_or_else(|| format!("missing required flag --{key}"))
}

fn parse<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("invalid {what}: `{s}`"))
}

fn load(opts: &HashMap<String, String>) -> Result<Dataset, String> {
    let path = get(opts, "corpus")?;
    io::load_jsonl(path).map_err(|e| e.to_string())
}

fn engine(opts: &HashMap<String, String>) -> Result<FisEngine, String> {
    let seed = opts
        .get("seed")
        .map(|s| parse::<u64>(s, "seed"))
        .transpose()?
        .unwrap_or(0);
    let threads = opts
        .get("threads")
        .map(|s| parse::<usize>(s, "thread count"))
        .transpose()?
        .unwrap_or(0);
    Ok(FisEngine::new(
        EngineConfig::default()
            .pipeline(FisOneConfig::default().seed(seed))
            .threads(threads),
    ))
}

fn cmd_generate(opts: &HashMap<String, String>) -> Result<(), String> {
    let floors: usize = parse(get(opts, "floors")?, "floor count")?;
    let samples: usize = parse(get(opts, "samples")?, "sample count")?;
    let seed = opts
        .get("seed")
        .map(|s| parse::<u64>(s, "seed"))
        .transpose()?
        .unwrap_or(0);
    let name = opts
        .get("name")
        .cloned()
        .unwrap_or_else(|| "building".into());
    let count: usize = opts
        .get("buildings")
        .map(|s| parse(s, "building count"))
        .transpose()?
        .unwrap_or(1);
    let out = get(opts, "out")?;
    if floors == 0 || samples == 0 || count == 0 {
        return Err("floors, samples, and buildings must be positive".into());
    }
    let buildings = (0..count)
        .map(|i| {
            let building_name = if count == 1 {
                name.clone()
            } else {
                format!("{name}-{i}")
            };
            BuildingConfig::new(building_name, floors)
                .samples_per_floor(samples)
                .seed(seed.wrapping_add(i as u64))
                .generate()
        })
        .collect();
    let ds = Dataset::new("cli", buildings);
    io::save_jsonl(&ds, out).map_err(|e| e.to_string())?;
    println!("wrote {out} ({count} buildings x {floors} floors x {samples} samples)");
    Ok(())
}

/// Restricts a corpus to the buildings named `name` (all of them: names
/// need not be unique in a concatenated corpus).
fn select_buildings(ds: Dataset, name: &str) -> Result<Dataset, String> {
    let picked: Vec<_> = ds
        .buildings()
        .iter()
        .filter(|b| b.name() == name)
        .cloned()
        .collect();
    if picked.is_empty() {
        return Err(format!("no building named `{name}` in the corpus"));
    }
    Ok(Dataset::new(ds.name(), picked))
}

fn cmd_identify(opts: &HashMap<String, String>) -> Result<(), String> {
    let ds = load(opts)?;
    let selected: Dataset = match opts.get("building") {
        None => ds,
        Some(name) => select_buildings(ds, name)?,
    };
    let engine = engine(opts)?;
    let report = engine.identify_corpus(&selected);
    // Runs are in corpus order, so pair by position — names need not be
    // unique in a concatenated corpus.
    for (building, run) in selected.buildings().iter().zip(report.runs.iter()) {
        let Ok(outcome) = &run.outcome else { continue };
        println!("# {} ({} floors)", run.building, run.floors);
        for (sample, floor) in building.samples().iter().zip(outcome.prediction.labels()) {
            println!("{} {floor}", sample.id());
        }
    }
    for (run, err) in report.failures() {
        eprintln!("# {} FAILED: {err}", run.building);
    }
    eprintln!(
        "# {} buildings in {:.2?} on {} threads",
        report.runs.len(),
        report.wall,
        report.threads
    );
    if report.failures().count() > 0 {
        return Err("some buildings failed; see stderr".to_owned());
    }
    Ok(())
}

fn cmd_evaluate(opts: &HashMap<String, String>) -> Result<(), String> {
    let ds = load(opts)?;
    let engine = engine(opts)?;
    let report = engine.evaluate_corpus(&ds);
    println!(
        "{:<20} {:>7} {:>7} {:>7} {:>10}",
        "building", "ARI", "NMI", "edit", "time"
    );
    for run in &report.runs {
        match &run.outcome {
            Ok(outcome) => {
                let r = outcome.eval.expect("evaluate_corpus scores every success");
                println!(
                    "{:<20} {:>7.3} {:>7.3} {:>7.3} {:>10.2?}",
                    run.building, r.ari, r.nmi, r.edit, run.elapsed
                );
            }
            Err(e) => println!("{:<20} FAILED: {e}", run.building),
        }
    }
    let mean = report.mean_eval();
    println!(
        "{:<20} {:>7.3} {:>7.3} {:>7.3} {:>10.2?}",
        "mean", mean.ari, mean.nmi, mean.edit, report.wall
    );
    eprintln!(
        "# wall {:.2?} vs cpu {:.2?} on {} threads (speedup {:.2}x)",
        report.wall,
        report.cpu_time(),
        report.threads,
        report.cpu_time().as_secs_f64() / report.wall.as_secs_f64().max(1e-9)
    );
    // A partially failed evaluation must not exit 0 — CI gates on it.
    if report.failures().count() > 0 {
        return Err("some buildings failed; see the table above".to_owned());
    }
    Ok(())
}

fn cmd_fit(opts: &HashMap<String, String>) -> Result<(), String> {
    let ds = load(opts)?;
    let out = get(opts, "out")?;
    let selected: Dataset = match opts.get("building") {
        None => ds,
        Some(name) => select_buildings(ds, name)?,
    };
    // A model artifact covers exactly one building; duplicate names in a
    // concatenated corpus are ambiguous here, unlike identify.
    if selected.len() != 1 {
        let names: Vec<&str> = selected.buildings().iter().map(|b| b.name()).collect();
        return Err(format!(
            "fit needs exactly one building, got {} ({}); \
             pick a unique one with --building NAME",
            selected.len(),
            names.join(", ")
        ));
    }
    let engine = engine(opts)?;
    if opts.contains_key("trace") {
        fis_obs::journal::start(fis_obs::journal::DEFAULT_JOURNAL_CAPACITY);
    }
    let fit = engine.fit_corpus(&selected);
    if let Some(path) = opts.get("trace") {
        let written = fis_obs::journal::flush_to(std::path::Path::new(path))
            .map_err(|e| format!("writing trace journal `{path}`: {e}"))?;
        eprintln!("# wrote {written} trace event(s) to {path}");
    }
    if let Some((run, err)) = fit.failures().next() {
        return Err(format!("fitting {} failed: {err}", run.building));
    }
    let (run, model) = fit.successes().next().expect("one building, no failure");
    let quantized = opts.contains_key("f32");
    if quantized {
        model.save_f32(out).map_err(|e| e.to_string())?;
    } else {
        model.save(out).map_err(|e| e.to_string())?;
    }
    eprintln!(
        "# fitted {} ({} floors, {} scans, {} MACs) in {:.2?}; wrote {out}{}",
        run.building,
        run.floors,
        run.samples,
        model.macs().len(),
        run.elapsed,
        if quantized { " (f32 artifact)" } else { "" }
    );
    Ok(())
}

fn cmd_assign(opts: &HashMap<String, String>) -> Result<(), String> {
    let model = FittedModel::load(get(opts, "model")?).map_err(|e| e.to_string())?;
    let scans = io::load_jsonl(get(opts, "scans")?).map_err(|e| e.to_string())?;
    let scans = match opts.get("building") {
        None => scans,
        Some(name) => select_buildings(scans, name)?,
    };
    let threads = opts
        .get("threads")
        .map(|s| parse::<usize>(s, "thread count"))
        .transpose()?
        .unwrap_or(0);
    // Assignment lines go to stdout by default, or to --out FILE so
    // scripts can diff serving paths without shell redirection.
    let mut sink: Box<dyn Write> = match opts.get("out") {
        None => Box::new(std::io::stdout().lock()),
        Some(path) => Box::new(std::io::BufWriter::new(
            std::fs::File::create(path).map_err(|e| format!("creating `{path}`: {e}"))?,
        )),
    };
    let emit = |sink: &mut dyn Write, line: std::fmt::Arguments| {
        writeln!(sink, "{line}").map_err(|e| format!("writing assignments: {e}"))
    };
    let started = std::time::Instant::now();
    let mut scan_count = 0usize;
    let mut failures = 0usize;
    for building in scans.buildings() {
        if building.name() != model.building() {
            // Legitimate for live scans collected under another label
            // (e.g. `hq-live`), but worth flagging: a different site's
            // scans would be confidently mislabeled wherever MAC
            // vocabularies overlap.
            eprintln!(
                "# warning: assigning scans of `{}` against the model fitted on `{}`",
                building.name(),
                model.building()
            );
        }
        emit(
            &mut *sink,
            format_args!("# {} ({} floors)", building.name(), model.floors()),
        )?;
        let results = model.assign_stream(building.samples(), threads);
        scan_count += results.len();
        for (sample, result) in building.samples().iter().zip(results) {
            match result {
                Ok(floor) => emit(&mut *sink, format_args!("{} {floor}", sample.id()))?,
                Err(e) => {
                    failures += 1;
                    eprintln!("# {} {} FAILED: {e}", building.name(), sample.id());
                }
            }
        }
    }
    sink.flush()
        .map_err(|e| format!("writing assignments: {e}"))?;
    eprintln!(
        "# assigned {scan_count} scans against model `{}` in {:.2?}",
        model.building(),
        started.elapsed()
    );
    if failures > 0 {
        return Err(format!("{failures} scan(s) failed; see stderr"));
    }
    Ok(())
}

fn cmd_extend(opts: &HashMap<String, String>) -> Result<(), String> {
    let mut model = FittedModel::load(get(opts, "model")?).map_err(|e| e.to_string())?;
    let out = get(opts, "out")?;
    let scans = io::load_jsonl(get(opts, "scans")?).map_err(|e| e.to_string())?;
    let scans = match opts.get("building") {
        None => scans,
        Some(name) => select_buildings(scans, name)?,
    };
    let mut samples = Vec::new();
    for building in scans.buildings() {
        if building.name() != model.building() {
            // Same caveat as assign: drift corpora are often collected
            // under a live label, but a genuinely different site would
            // pollute the extended vocabulary.
            eprintln!(
                "# warning: extending the model fitted on `{}` with scans of `{}`",
                model.building(),
                building.name()
            );
        }
        samples.extend_from_slice(building.samples());
    }
    let started = std::time::Instant::now();
    let report = model.extend(&samples).map_err(|e| e.to_string())?;
    model.save(out).map_err(|e| e.to_string())?;
    eprintln!(
        "# extended {}: appended {} scans ({} skipped, {} new MACs), \
         now {} scans / {} MACs in {:.2?}; wrote {out}",
        model.building(),
        report.appended,
        report.skipped,
        report.new_macs,
        report.total_scans,
        report.total_macs,
        started.elapsed()
    );
    Ok(())
}

fn cmd_serve(opts: &HashMap<String, String>) -> Result<(), String> {
    let dir = get(opts, "models")?;
    if !std::path::Path::new(dir).is_dir() {
        return Err(format!("--models `{dir}` is not a directory"));
    }
    let flag = |key: &str| {
        opts.get(key)
            .map(|s| parse::<u64>(s, key))
            .transpose()
            .map(|v| v.unwrap_or(0))
    };
    let registry = RegistryConfig::new(dir)
        .max_models(flag("max-models")? as usize)
        .max_bytes(flag("max-bytes")?)
        .assign_cache(flag("assign-cache")? as usize);
    let daemon = Daemon::new(
        DaemonConfig::new(registry)
            .threads(flag("threads")? as usize)
            .max_batch(flag("max-batch")? as usize)
            .pool(flag("pool")? as usize),
    );
    if opts.contains_key("trace") {
        fis_obs::journal::start(fis_obs::journal::DEFAULT_JOURNAL_CAPACITY);
    }
    match opts.get("tcp") {
        None => {
            eprintln!("# fis-serve: pipe mode over {dir} (send {{\"op\":\"shutdown\"}} to stop)");
            daemon
                .serve_stdio()
                .map_err(|e| format!("serving stdin/stdout: {e}"))?;
        }
        Some(addr) => {
            let listener =
                std::net::TcpListener::bind(addr).map_err(|e| format!("binding `{addr}`: {e}"))?;
            let local = listener
                .local_addr()
                .map_err(|e| format!("resolving local address: {e}"))?;
            eprintln!("# fis-serve: listening on {local} over {dir}");
            daemon
                .serve_tcp(&listener)
                .map_err(|e| format!("serving {local}: {e}"))?;
        }
    }
    if let Some(path) = opts.get("trace") {
        let written = fis_obs::journal::flush_to(std::path::Path::new(path))
            .map_err(|e| format!("writing trace journal `{path}`: {e}"))?;
        eprintln!("# fis-serve: wrote {written} trace event(s) to {path}");
    }
    if let Some(path) = opts.get("metrics") {
        std::fs::write(path, daemon.prometheus_text())
            .map_err(|e| format!("writing metrics `{path}`: {e}"))?;
        eprintln!("# fis-serve: wrote metrics to {path}");
    }
    eprintln!("# fis-serve: stopped; final stats {}", daemon.stats_json());
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    match args {
        [sub, file] if sub == "summarize" => {
            let text = std::fs::read_to_string(file)
                .map_err(|e| format!("reading trace journal `{file}`: {e}"))?;
            let stages = fis_obs::summarize(&text);
            if stages.is_empty() {
                return Err(format!("trace journal `{file}` holds no events"));
            }
            print!("{}", fis_obs::render_table(&stages));
            Ok(())
        }
        _ => Err("usage: fis-one trace summarize FILE".to_owned()),
    }
}

fn cmd_stats(opts: &HashMap<String, String>) -> Result<(), String> {
    let ds = load(opts)?;
    for b in ds.buildings() {
        let hist = fis_one::types::stats::mac_floor_span_histogram(b);
        let (adj, far) = fis_one::types::stats::spillover_contrast(b, 3);
        println!(
            "{}: {} floors, {} samples, {} MACs, span histogram {:?}, \
             shared MACs adjacent {:.1} vs distant {:.1}",
            b.name(),
            b.floors(),
            b.len(),
            fis_one::types::stats::total_macs(b),
            hist,
            adj,
            far
        );
    }
    Ok(())
}
