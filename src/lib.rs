//! # FIS-ONE: floor identification with one labeled RF sample
//!
//! A from-scratch Rust reproduction of *FIS-ONE: Floor Identification
//! System with One Label for Crowdsourced RF Signals* (Zhuo et al.,
//! ICDCS 2023). Given a building's worth of crowdsourced WiFi scans and a
//! **single** floor-labeled scan on the bottom floor, FIS-ONE assigns a
//! floor to every scan by:
//!
//! 1. modeling the scans as a weighted bipartite MAC×sample graph,
//! 2. learning sample embeddings with an attention-based GNN ([`gnn`]),
//! 3. clustering the embeddings hierarchically into one cluster per floor,
//! 4. ordering the clusters by solving a travelling-salesman reduction
//!    over a signal-spillover similarity ([`core`]).
//!
//! This facade crate re-exports the whole workspace. Start with
//! [`FisOne::identify`], or see `examples/quickstart.rs`.
//!
//! # Example
//!
//! ```
//! use fis_one::{BuildingConfig, FisOne, FisOneConfig, RfGnnConfig};
//!
//! // Synthesize a small 3-floor building (stand-in for crowdsourced data).
//! let building = BuildingConfig::new("demo", 3)
//!     .samples_per_floor(30)
//!     .seed(7)
//!     .generate();
//! let anchor = building.bottom_anchor().expect("bottom floor was surveyed");
//!
//! // One labeled sample in, floor labels for every sample out.
//! // (Tiny training config keeps the doctest fast.)
//! let mut config = FisOneConfig::default();
//! config.gnn = RfGnnConfig::new(8).epochs(2).walks_per_node(2);
//! let prediction = FisOne::new(config)
//!     .identify(building.samples(), building.floors(), anchor)?;
//! assert_eq!(prediction.labels().len(), building.len());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use fis_autograd as autograd;
pub use fis_baselines as baselines;
pub use fis_cluster as cluster;
pub use fis_core as core;
pub use fis_gnn as gnn;
pub use fis_graph as graph;
pub use fis_linalg as linalg;
pub use fis_metrics as metrics;
pub use fis_obs as obs;
pub use fis_serve as serve;
pub use fis_synth as synth;
pub use fis_tsp as tsp;
pub use fis_types as types;

pub use fis_core::{
    evaluate_building, identify_with_arbitrary_anchor, ArbitraryAnchorOutcome, ClusteringMethod,
    EvalResult, FisError, FisOne, FisOneConfig, FittedModel, FloorPrediction, Precision,
    SimilarityMethod, TspSolver,
};
pub use fis_gnn::{RfGnn, RfGnnConfig};
pub use fis_graph::BipartiteGraph;
pub use fis_serve::{
    Daemon, DaemonConfig, ModelRegistry, RegistryConfig, Router, RouterConfig, ServeError,
    SharedRegistry,
};
pub use fis_synth::{BuildingConfig, Scale};
pub use fis_types::{Building, Dataset, FloorId, LabeledAnchor, MacAddr, Rssi, SignalSample};
