//! The opt-in f32 serving artifact (schema version 3) against the golden
//! corpus: `save_f32` → `load` → `assign` must reproduce the f64 model's
//! floor labels **exactly** on every golden scan, the artifact must be
//! at most 60% of the f64 bytes, and a loaded v3 artifact must re-save
//! byte-identically. The f64 path stays the determinism reference — the
//! golden fixtures in `tests/golden_fixtures.rs` never see a v3 byte.

use std::path::PathBuf;

use fis_one::types::io;
use fis_one::{FisOne, FisOneConfig, FittedModel, FloorId, Precision};

const GOLDEN_SEED: u64 = 7;

/// The checked-in golden corpus (the same one `golden_fixtures.rs` pins).
fn golden_corpus() -> fis_one::Dataset {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/golden_corpus.jsonl");
    io::load_jsonl(&path).expect("golden corpus fixture loads")
}

fn fit_golden() -> (fis_one::Building, FittedModel) {
    let ds = golden_corpus();
    let building = ds.buildings()[0].clone();
    let model = FisOne::new(FisOneConfig::default().seed(GOLDEN_SEED))
        .fit(
            building.name(),
            building.samples(),
            building.floors(),
            building.bottom_anchor().unwrap(),
        )
        .expect("golden corpus fits");
    (building, model)
}

#[test]
fn f32_artifact_reproduces_f64_labels_exactly_on_golden_corpus() {
    let (building, model) = fit_golden();
    let dir = std::env::temp_dir().join(format!("fis-f32-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let f64_path = dir.join("golden.json");
    let f32_path = dir.join("golden-f32.json");
    model.save(&f64_path).unwrap();
    model.save_f32(&f32_path).unwrap();

    let f64_loaded = FittedModel::load(&f64_path).unwrap();
    let f32_loaded = FittedModel::load(&f32_path).unwrap();
    assert_eq!(f64_loaded.precision(), Precision::F64);
    assert_eq!(f32_loaded.precision(), Precision::F32);

    for scan in building.samples() {
        let reference: FloorId = f64_loaded.assign(scan).unwrap();
        let quantized: FloorId = f32_loaded.assign(scan).unwrap();
        assert_eq!(
            quantized,
            reference,
            "f32 artifact disagrees with f64 on golden scan {}",
            scan.id()
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn f32_artifact_is_at_most_60_percent_of_f64_bytes() {
    let (_, model) = fit_golden();
    let f64_bytes = model.to_json_string().len();
    let f32_bytes = model.quantize_f32().unwrap().to_json_string().len();
    assert!(
        f32_bytes * 10 <= f64_bytes * 6,
        "f32 artifact is {f32_bytes} bytes vs {f64_bytes} f64 bytes \
         ({:.1}%), budget is 60%",
        100.0 * f32_bytes as f64 / f64_bytes as f64
    );
}

#[test]
fn f32_artifact_round_trips_byte_identically() {
    let (_, model) = fit_golden();
    let first = model.quantize_f32().unwrap().to_json_string();
    assert!(first.contains("\"version\":3"));
    let loaded = FittedModel::from_json_str(&first).unwrap();
    assert_eq!(loaded.to_json_string(), first);
}

#[test]
fn f64_artifact_bytes_are_untouched_by_the_f32_feature() {
    // Quantizing a copy must not perturb the original model's bytes —
    // the golden fixtures depend on the f64 path writing version 1
    // exactly as before the v3 format existed.
    let (_, model) = fit_golden();
    let before = model.to_json_string();
    let _ = model.quantize_f32().unwrap();
    assert_eq!(model.to_json_string(), before);
    assert!(before.contains("\"version\":1"));
}
