//! Online-extension invariants under drift, end to end.
//!
//! The standing contract of `FittedModel::extend` is that growth is
//! **invisible to the past**: any scan the base model could answer keeps
//! its exact answer — bit-identical, for any thread count — after any
//! number of extensions, and the extended artifact survives
//! save→load→save byte-identically. These tests drive the contract
//! through the public surface (temporal drift corpora from `fis-synth`,
//! the persistence layer, and the serving daemon's v2 `extend` op) and
//! pin down the typed errors corrupt artifacts and bad extension inputs
//! must produce.

use std::collections::BTreeSet;

use fis_one::synth::{DriftScenario, TemporalConfig};
use fis_one::types::json::{Json, ToJson};
use fis_one::{
    BuildingConfig, Daemon, DaemonConfig, FisOne, FisOneConfig, FittedModel, RegistryConfig,
    SignalSample,
};

const SEED: u64 = 41;

/// A churn corpus whose later epochs carry MACs the survey never heard,
/// plus the model fitted on its epoch-0 survey.
fn churned() -> (FittedModel, Vec<Vec<SignalSample>>) {
    let corpus = TemporalConfig::new(
        BuildingConfig::new("drifty", 3)
            .samples_per_floor(30)
            .aps_per_floor(8)
            .seed(SEED),
        DriftScenario::ApChurn {
            replaced_per_epoch: 0.25,
        },
    )
    .epochs(3)
    .scans_per_epoch(40)
    .generate();
    let b = &corpus.building;
    let anchor = b.bottom_anchor().expect("survey anchor");
    let model = FisOne::new(FisOneConfig::quick(SEED))
        .fit(b.name(), b.samples(), b.floors(), anchor)
        .expect("survey fits");
    let epochs = corpus.epochs.iter().map(|e| e.samples.clone()).collect();
    (model, epochs)
}

fn answers(model: &FittedModel, scans: &[SignalSample], threads: usize) -> Vec<usize> {
    model
        .assign_stream(scans, threads)
        .into_iter()
        .map(|r| r.expect("old-vocabulary scan answers").index())
        .collect()
}

#[test]
fn extension_never_changes_old_vocabulary_answers_for_any_thread_count() {
    let (mut model, epochs) = churned();
    let survey: Vec<SignalSample> = model.samples().to_vec();
    let base_vocab: BTreeSet<u64> = model.macs().iter().map(|m| m.to_u64()).collect();

    let baseline = answers(&model, &survey, 1);
    assert_eq!(
        baseline,
        answers(&model, &survey, 4),
        "threads leak pre-extension"
    );

    // Fresh queries that stay inside the base vocabulary are "old"
    // scans too: their answers are part of served history the extension
    // must never rewrite. A calibration-drift stream over the same
    // building is guaranteed to hear only surveyed MACs (the AP
    // population never changes), so it gives base-vocabulary queries
    // that are not the training scans themselves.
    let old_epoch_scans: Vec<SignalSample> = TemporalConfig::new(
        BuildingConfig::new("drifty", 3)
            .samples_per_floor(30)
            .aps_per_floor(8)
            .seed(SEED),
        DriftScenario::CalibrationOffset { db_per_epoch: 1.0 },
    )
    .epochs(2)
    .scans_per_epoch(30)
    .generate()
    .epochs
    .into_iter()
    .flat_map(|e| e.samples)
    .collect();
    assert!(old_epoch_scans
        .iter()
        .all(|s| s.iter().all(|(m, _)| base_vocab.contains(&m.to_u64()))));
    let old_epoch_baseline = answers(&model, &old_epoch_scans, 1);

    let mut grew_vocabulary = false;
    for epoch in &epochs {
        let report = model
            .extend(epoch)
            .expect("churn epochs overlap the base vocabulary");
        grew_vocabulary |= report.new_macs > 0;
        for threads in [1, 4] {
            assert_eq!(
                baseline,
                answers(&model, &survey, threads),
                "survey answers drifted after extension (threads {threads})"
            );
            assert_eq!(
                old_epoch_baseline,
                answers(&model, &old_epoch_scans, threads),
                "old-vocabulary epoch answers drifted (threads {threads})"
            );
        }
    }
    assert!(
        grew_vocabulary,
        "the scenario must actually grow the vocabulary"
    );
    assert!(model.is_extended());
}

#[test]
fn extend_save_load_save_stays_byte_identical() {
    let (mut model, epochs) = churned();
    let dir = std::env::temp_dir().join(format!("fis_ext_roundtrip_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("drifty.json");

    // Repeated extension composes; the roundtrip must hold at every step.
    for epoch in &epochs {
        model.extend(epoch).expect("extend");
        let direct = model.to_json_string();
        model.save(&path).expect("save");
        let reloaded = FittedModel::load(&path).expect("load");
        assert_eq!(
            direct,
            reloaded.to_json_string(),
            "load is not the inverse of save"
        );
        let bytes_a = std::fs::read(&path).unwrap();
        reloaded.save(&path).expect("re-save");
        assert_eq!(
            bytes_a,
            std::fs::read(&path).unwrap(),
            "save→load→save changed bytes"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_extension_inputs_yield_typed_errors_and_leave_the_model_intact() {
    let (mut model, _) = churned();
    let before = model.to_json_string();

    let err = model.extend(&[]).expect_err("empty extension must fail");
    assert!(err.to_string().contains("at least one scan"), "{err}");

    let silent = SignalSample::builder(7).build();
    let err = model
        .extend(std::slice::from_ref(&silent))
        .expect_err("a silent scan must fail");
    assert!(err.to_string().contains("heard no MAC"), "{err}");

    // A scan set fully disjoint from the vocabulary cannot be labeled by
    // the frozen base and must be rejected as a whole.
    let alien = SignalSample::builder(8)
        .reading(
            fis_one::MacAddr::from_u64(0xDEAD_BEEF_0000),
            fis_one::Rssi::new(-50.0).unwrap(),
        )
        .build();
    let err = model
        .extend(std::slice::from_ref(&alien))
        .expect_err("disjoint vocabulary must fail");
    assert!(err.to_string().contains("shares a MAC"), "{err}");

    assert_eq!(
        before,
        model.to_json_string(),
        "failed extends must not mutate the model"
    );
}

/// Parses, mutates, and reserializes an artifact string.
fn tamper(
    text: &str,
    mutate: impl FnOnce(&mut std::collections::BTreeMap<String, Json>),
) -> String {
    let mut json = Json::parse(text).expect("artifact parses");
    let Json::Obj(root) = &mut json else {
        panic!("artifact is an object")
    };
    mutate(root);
    json.to_string()
}

#[test]
fn corrupt_extension_artifacts_yield_typed_errors() {
    let (mut model, epochs) = churned();
    let v1 = model.to_json_string();
    model.extend(&epochs[0]).expect("extend");
    let v2 = model.to_json_string();

    // Version 1 claiming an extension: the field must be rejected, not
    // silently dropped.
    let ext = Json::parse(&v2)
        .unwrap()
        .get("extension")
        .cloned()
        .expect("v2 artifact carries an extension");
    let forged = tamper(&v1, |root| {
        root.insert("extension".into(), ext);
    });
    let err = FittedModel::from_json_str(&forged).expect_err("v1 + extension");
    assert!(err.to_string().contains("version 1 artifact"), "{err}");

    // Version 2 without the extension payload.
    let hollow = tamper(&v2, |root| {
        root.remove("extension");
    });
    let err = FittedModel::from_json_str(&hollow).expect_err("v2 - extension");
    assert!(
        err.to_string().contains("missing field `extension`"),
        "{err}"
    );

    // Extension assignment pointing past the floor count.
    let out_of_range = tamper(&v2, |root| {
        let Some(Json::Obj(ext)) = root.get_mut("extension") else {
            panic!("extension object")
        };
        let Some(Json::Arr(assignment)) = ext.get_mut("assignment") else {
            panic!("extension assignment")
        };
        assignment[0] = Json::Num(1e6);
    });
    let err = FittedModel::from_json_str(&out_of_range).expect_err("cluster out of range");
    assert!(err.to_string().contains("beyond the floor count"), "{err}");

    // An empty extension is not a legal version-2 artifact.
    let emptied = tamper(&v2, |root| {
        let Some(Json::Obj(ext)) = root.get_mut("extension") else {
            panic!("extension object")
        };
        ext.insert("samples".into(), Json::Arr(vec![]));
        ext.insert("assignment".into(), Json::Arr(vec![]));
    });
    let err = FittedModel::from_json_str(&emptied).expect_err("empty extension");
    assert!(err.to_string().contains("empty extension"), "{err}");
}

#[test]
fn daemon_extend_matches_library_extend_byte_for_byte() {
    let (model, epochs) = churned();
    let dir = std::env::temp_dir().join(format!("fis_ext_daemon_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("drifty.json");
    model.save(&path).expect("stage artifact");

    // Reference: the pure-library extension of the same artifact.
    let mut reference = FittedModel::load(&path).expect("load");
    reference.extend(&epochs[0]).expect("extend");

    let daemon = Daemon::new(DaemonConfig::new(
        RegistryConfig::new(&dir).max_models(2).assign_cache(64),
    ));
    let survey = model.samples().to_vec();
    let before: Vec<String> = survey
        .iter()
        .map(|s| {
            let line = Json::obj([
                ("op", Json::Str("assign".into())),
                ("building", Json::Str("drifty".into())),
                ("scan", s.to_json()),
            ])
            .to_string();
            let (resp, _) = daemon.handle_line(&line);
            assert!(resp.to_string().contains("\"ok\":true"), "{resp}");
            resp.to_string()
        })
        .collect();

    let extend = Json::obj([
        ("v", Json::Num(2.0)),
        ("op", Json::Str("extend".into())),
        ("building", Json::Str("drifty".into())),
        (
            "scans",
            Json::Arr(epochs[0].iter().map(ToJson::to_json).collect()),
        ),
    ])
    .to_string();
    let (resp, shutdown) = daemon.handle_line(&extend);
    assert!(!shutdown);
    assert!(resp.to_string().contains("\"ok\":true"), "{resp}");

    // The hot-swapped artifact is the byte-identical twin of the
    // library-side extension: extension is a pure function of
    // (artifact, scans), wherever it runs.
    let published = std::fs::read_to_string(&path).unwrap();
    assert_eq!(format!("{}\n", reference.to_json_string()), published);

    // And served history survives the swap bit-identically.
    for (scan, expected) in survey.iter().zip(&before) {
        let line = Json::obj([
            ("op", Json::Str("assign".into())),
            ("building", Json::Str("drifty".into())),
            ("scan", scan.to_json()),
        ])
        .to_string();
        let (resp, _) = daemon.handle_line(&line);
        assert_eq!(
            &resp.to_string(),
            expected,
            "old answer changed after hot-swap"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
