//! Determinism contract of the parallel execution engine: for a fixed
//! seed, predictions are bit-identical regardless of the thread budget.

use fis_one::core::{EngineConfig, FisEngine};
use fis_one::{BuildingConfig, Dataset, FisOneConfig, RfGnnConfig};

fn quick_config(seed: u64) -> FisOneConfig {
    let mut config = FisOneConfig::default().seed(seed);
    config.gnn = RfGnnConfig::new(8)
        .epochs(4)
        .walks_per_node(2)
        .neighbor_samples(vec![6, 3])
        .seed(seed);
    config
}

fn corpus() -> Dataset {
    let buildings = (0..4)
        .map(|i| {
            BuildingConfig::new(format!("b{i}"), 3 + i % 2)
                .samples_per_floor(25)
                .aps_per_floor(8)
                .seed(50 + i as u64)
                .generate()
        })
        .collect();
    Dataset::new("determinism", buildings)
}

/// Property: across a spread of seeds, a 1-thread engine and an N-thread
/// engine produce identical `FloorPrediction`s on the same corpus.
#[test]
fn one_thread_and_many_threads_agree_for_every_seed() {
    let corpus = corpus();
    for seed in [0u64, 1, 7, 42, 2023] {
        let serial = FisEngine::new(
            EngineConfig::default()
                .pipeline(quick_config(seed))
                .threads(1),
        )
        .identify_corpus(&corpus);
        let parallel = FisEngine::new(
            EngineConfig::default()
                .pipeline(quick_config(seed))
                .threads(8),
        )
        .identify_corpus(&corpus);

        assert_eq!(serial.runs.len(), parallel.runs.len());
        for (s, p) in serial.runs.iter().zip(parallel.runs.iter()) {
            assert_eq!(s.building, p.building);
            let (s_out, p_out) = (
                s.outcome.as_ref().expect("serial run succeeded"),
                p.outcome.as_ref().expect("parallel run succeeded"),
            );
            // Bit-identical predictions: labels, assignment, and cluster
            // ordering all match exactly — not merely approximately.
            assert_eq!(
                s_out.prediction, p_out.prediction,
                "seed {seed}, building {}: thread count changed the prediction",
                s.building
            );
        }
    }
}

/// Scoring through the batch engine equals scoring buildings one at a
/// time with the single-building entry point.
#[test]
fn batch_scores_equal_single_building_scores() {
    let corpus = corpus();
    let config = quick_config(3);
    let report = FisEngine::new(EngineConfig::default().pipeline(config.clone()).threads(4))
        .evaluate_corpus(&corpus);
    for (run, outcome) in report.successes() {
        let building = corpus
            .buildings()
            .iter()
            .find(|b| b.name() == run.building)
            .unwrap();
        let solo =
            fis_one::evaluate_building(&fis_one::FisOne::new(config.clone()), building).unwrap();
        assert_eq!(outcome.eval.unwrap(), solo);
    }
}

/// Two engines with the same seed agree; a different seed changes at
/// least one building's prediction (the RNG is actually used).
#[test]
fn seed_controls_the_outcome() {
    let corpus = corpus();
    let run = |seed: u64| {
        FisEngine::new(EngineConfig::default().pipeline(quick_config(seed)))
            .identify_corpus(&corpus)
    };
    let a = run(11);
    let b = run(11);
    for (x, y) in a.runs.iter().zip(b.runs.iter()) {
        assert_eq!(
            x.outcome.as_ref().unwrap().prediction,
            y.outcome.as_ref().unwrap().prediction
        );
    }
    let c = run(12);
    let differs = a.runs.iter().zip(c.runs.iter()).any(|(x, y)| {
        x.outcome.as_ref().unwrap().prediction != y.outcome.as_ref().unwrap().prediction
    });
    assert!(differs, "changing the seed changed nothing — RNG unused?");
}
