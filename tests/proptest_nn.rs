//! Property tests for the VP-tree 1-NN index against its linear-scan
//! reference.
//!
//! The index's contract is *bit-identity*: for any point set — including
//! duplicates, exact distance ties, excluded points, and degenerate
//! (empty / single-point) inputs — [`VpTree::nearest`] returns exactly
//! the id the exhaustive scan returns, which is the lexicographic
//! minimum of `(distance, id)`. Points are drawn from a coarse grid so
//! ties and duplicates occur constantly rather than almost never, and a
//! per-point selector excludes ~25% of points to exercise the mask path
//! the model uses for empty training scans.

use fis_one::core::VpTree;
use proptest::prelude::*;

/// Builds the tree and diffs `nearest` against `nearest_linear` for
/// every query; returns the first divergence as `(query index, tree
/// answer, scan answer)`.
fn diff_tree_vs_scan(
    points: &[Vec<f64>],
    include: &[bool],
    queries: &[Vec<f64>],
) -> Option<(usize, Option<usize>, Option<usize>)> {
    let tree = VpTree::build(points, |i| include.get(i).copied().unwrap_or(true));
    queries.iter().enumerate().find_map(|(qi, q)| {
        let fast = tree.nearest(q);
        let slow = tree.nearest_linear(q);
        (fast != slow).then_some((qi, fast, slow))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Grid-snapped coordinates: duplicates and exact ties dominate, so
    /// the `(distance, id)` tie-break is exercised on nearly every case.
    #[test]
    fn tree_matches_linear_scan_on_tied_grids(
        raw in proptest::collection::vec((0i32..6, 0i32..6, 0i32..6, 0u32..4), 0..48),
        raw_queries in proptest::collection::vec((0i32..6, 0i32..6, 0i32..6), 1..8),
    ) {
        let points: Vec<Vec<f64>> = raw
            .iter()
            .map(|&(x, y, z, _)| vec![x as f64 * 0.5, y as f64 * 0.5, z as f64 * 0.5])
            .collect();
        let include: Vec<bool> = raw.iter().map(|&(_, _, _, sel)| sel != 0).collect();
        let queries: Vec<Vec<f64>> = raw_queries
            .iter()
            .map(|&(x, y, z)| vec![x as f64 * 0.5, y as f64 * 0.5, z as f64 * 0.5])
            .collect();
        prop_assert_eq!(diff_tree_vs_scan(&points, &include, &queries), None);
    }

    /// Continuous coordinates: ties are rare but pruning bounds are
    /// stressed by arbitrary geometry, including coincident-with-query
    /// points and clusters at wildly different scales.
    #[test]
    fn tree_matches_linear_scan_on_continuous_points(
        raw in proptest::collection::vec((-100.0..100.0f64, -0.001..0.001f64), 1..64),
        raw_queries in proptest::collection::vec((-100.0..100.0f64, -0.001..0.001f64), 1..8),
    ) {
        let points: Vec<Vec<f64>> = raw.iter().map(|&(x, y)| vec![x, y]).collect();
        let include = vec![true; points.len()];
        let queries: Vec<Vec<f64>> = raw_queries.iter().map(|&(x, y)| vec![x, y]).collect();
        prop_assert_eq!(diff_tree_vs_scan(&points, &include, &queries), None);
    }

    /// Querying with an indexed point's own coordinates must return the
    /// lowest id among its exact duplicates.
    #[test]
    fn self_query_returns_lowest_duplicate_id(
        raw in proptest::collection::vec((0i32..4, 0i32..4), 1..32),
        pick in 0usize..32,
    ) {
        let points: Vec<Vec<f64>> = raw
            .iter()
            .map(|&(x, y)| vec![x as f64, y as f64])
            .collect();
        let tree = VpTree::build(&points, |_| true);
        let q = &points[pick % points.len()];
        let hit = tree.nearest(q).expect("non-empty index");
        prop_assert_eq!(Some(hit), tree.nearest_linear(q));
        // The returned point is an exact duplicate of the query, and no
        // earlier id is.
        prop_assert_eq!(tree.point(hit), q.as_slice());
        let earlier = points[..hit].iter().position(|p| p == q);
        prop_assert_eq!(earlier, None);
    }
}
