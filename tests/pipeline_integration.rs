//! Integration tests spanning the whole workspace: synthetic buildings in,
//! floor labels out, scored against withheld ground truth.

use fis_one::core::evaluate::score_prediction;
use fis_one::{
    evaluate_building, identify_with_arbitrary_anchor, ArbitraryAnchorOutcome, BuildingConfig,
    FisOne, FisOneConfig, FloorId, RfGnnConfig,
};

fn test_pipeline(seed: u64) -> FisOne {
    let mut config = FisOneConfig::default().seed(seed);
    config.gnn = RfGnnConfig::new(16)
        .epochs(12)
        .walks_per_node(6)
        .neighbor_samples(vec![8, 4])
        .seed(seed);
    FisOne::new(config)
}

fn building(floors: usize, seed: u64) -> fis_one::Building {
    BuildingConfig::new(format!("itest-{seed}"), floors)
        .samples_per_floor(40)
        .aps_per_floor(10)
        .atrium_aps(0)
        .seed(seed)
        .generate()
}

#[test]
fn end_to_end_three_floor_building() {
    let b = building(3, 1);
    let res = evaluate_building(&test_pipeline(1), &b).unwrap();
    assert!(res.ari > 0.6, "ari={}", res.ari);
    assert!(res.nmi > 0.6, "nmi={}", res.nmi);
    assert!(res.edit > 0.7, "edit={}", res.edit);
}

#[test]
fn end_to_end_five_floor_building() {
    let b = building(5, 2);
    let res = evaluate_building(&test_pipeline(2), &b).unwrap();
    assert!(res.ari > 0.5, "ari={}", res.ari);
    assert!(res.edit > 0.6, "edit={}", res.edit);
}

#[test]
fn anchor_sample_always_gets_its_own_label() {
    let b = building(4, 3);
    let anchor = b.bottom_anchor().unwrap();
    let pred = test_pipeline(3)
        .identify(b.samples(), b.floors(), anchor)
        .unwrap();
    assert_eq!(pred.labels()[anchor.sample.index()], FloorId::BOTTOM);
}

#[test]
fn deterministic_end_to_end() {
    let b = building(3, 4);
    let anchor = b.bottom_anchor().unwrap();
    let p1 = test_pipeline(4)
        .identify(b.samples(), b.floors(), anchor)
        .unwrap();
    let p2 = test_pipeline(4)
        .identify(b.samples(), b.floors(), anchor)
        .unwrap();
    assert_eq!(p1, p2);
}

#[test]
fn arbitrary_anchor_extension_resolves_even_building() {
    let b = building(4, 5);
    let anchor = b.anchor_on(FloorId::from_index(2)).unwrap();
    let outcome =
        identify_with_arbitrary_anchor(&test_pipeline(5), b.samples(), b.floors(), anchor).unwrap();
    let pred = outcome.prediction().expect("even building resolves");
    assert_eq!(pred.labels()[anchor.sample.index()], anchor.floor);
    let res = score_prediction(pred, &b).unwrap();
    assert!(res.ari > 0.4, "ari={}", res.ari);
}

#[test]
fn arbitrary_anchor_middle_of_odd_building_is_ambiguous() {
    let b = building(5, 6);
    let anchor = b.anchor_on(FloorId::from_index(2)).unwrap();
    let outcome =
        identify_with_arbitrary_anchor(&test_pipeline(6), b.samples(), b.floors(), anchor).unwrap();
    assert!(matches!(outcome, ArbitraryAnchorOutcome::Ambiguous { .. }));
}

#[test]
fn serialization_round_trip_preserves_pipeline_output() {
    let b = building(3, 7);
    let dir = std::env::temp_dir().join("fis_one_itest");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corpus.jsonl");
    let ds = fis_one::Dataset::new("itest", vec![b.clone()]);
    fis_one::types::io::save_jsonl(&ds, &path).unwrap();
    let loaded = fis_one::types::io::load_jsonl(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded.buildings()[0], b);

    // Identical input -> identical prediction.
    let anchor = b.bottom_anchor().unwrap();
    let p1 = test_pipeline(7)
        .identify(b.samples(), b.floors(), anchor)
        .unwrap();
    let p2 = test_pipeline(7)
        .identify(loaded.buildings()[0].samples(), b.floors(), anchor)
        .unwrap();
    assert_eq!(p1, p2);
}
