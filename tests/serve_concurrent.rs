//! Concurrent-serving determinism against the golden fixtures.
//!
//! The concurrency layers added on top of the daemon — the bounded
//! connection pool and the sharding `fis-router` with replica failover —
//! must be *invisible* in the answers: golden scans served by N
//! interleaved clients, through any shard placement, and across a shard
//! dying mid-run, produce floors **bit-identical** to the checked-in
//! `tests/fixtures/golden_assign.jsonl` and to a sequential
//! single-connection baseline. Assignment is a pure function of
//! (model artifact, scan content), so interleaving, lock acquisition
//! order, worker scheduling, and failover retries may only change
//! timing — never bytes.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;

use fis_one::types::io;
use fis_one::types::json::{Json, ToJson};
use fis_one::{
    Building, Daemon, DaemonConfig, FisOne, FisOneConfig, RegistryConfig, Router, RouterConfig,
};

const GOLDEN_SEED: u64 = 7;
const CLIENTS: usize = 4;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Loads the golden building and stages its fitted artifact in a fresh
/// temp model directory.
fn stage_golden(tag: &str) -> (Building, PathBuf) {
    let corpus = io::load_jsonl(fixture("golden_corpus.jsonl")).expect("golden corpus");
    let building = corpus.buildings()[0].clone();
    let model = FisOne::new(FisOneConfig::default().seed(GOLDEN_SEED))
        .fit(
            building.name(),
            building.samples(),
            building.floors(),
            building.bottom_anchor().expect("bottom surveyed"),
        )
        .expect("golden building fits");
    let dir = std::env::temp_dir().join(format!("fis_conc_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    model
        .save(dir.join(format!("{}.json", building.name())))
        .unwrap();
    (building, dir)
}

/// One NDJSON round trip on an existing connection.
fn roundtrip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, request: &str) -> Json {
    writeln!(writer, "{request}").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    Json::parse(line.trim()).unwrap_or_else(|e| panic!("bad response `{line}`: {e}"))
}

fn connect(addr: &str) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).ok();
    (BufReader::new(stream.try_clone().unwrap()), stream)
}

/// Serves `scans[range]` through `addr` over `CLIENTS` interleaved
/// connections (scan `i` rides connection `i mod CLIENTS`, all clients
/// in flight at once) and returns `(scan index, floor)` pairs.
fn assign_interleaved(addr: &str, building: &Building, indices: &[usize]) -> Vec<(usize, usize)> {
    let mut results: Vec<(usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let share: Vec<usize> = indices
                    .iter()
                    .copied()
                    .enumerate()
                    .filter(|(pos, _)| pos % CLIENTS == c)
                    .map(|(_, i)| i)
                    .collect();
                scope.spawn(move || {
                    let (mut reader, mut writer) = connect(addr);
                    share
                        .into_iter()
                        .map(|i| {
                            let request = Json::obj([
                                ("op", Json::Str("assign".into())),
                                ("building", Json::Str(building.name().to_owned())),
                                ("scan", building.samples()[i].to_json()),
                                ("id", Json::Num(i as f64)),
                            ])
                            .to_string();
                            let response = roundtrip(&mut reader, &mut writer, &request);
                            assert_eq!(
                                response.get("ok"),
                                Some(&Json::Bool(true)),
                                "scan {i}: {response}"
                            );
                            // The correlation id must round-trip exactly.
                            assert_eq!(response.get("id").unwrap().as_usize(), Some(i));
                            (i, response.get("floor").unwrap().as_usize().unwrap())
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    results.sort_unstable();
    results
}

/// Renders floors in the `golden_assign.jsonl` line format.
fn render(building: &Building, floors: &[(usize, usize)]) -> String {
    floors
        .iter()
        .map(|&(i, floor)| {
            let line = Json::obj([
                ("building", Json::Str(building.name().to_owned())),
                ("floor", Json::Num(floor as f64)),
                ("id", Json::Num(i as f64)),
            ]);
            format!("{line}\n")
        })
        .collect()
}

fn golden_expected() -> String {
    std::fs::read_to_string(fixture("golden_assign.jsonl"))
        .expect("golden assign fixture (run FIS_REGEN_GOLDEN=1 via golden_fixtures once)")
}

#[test]
fn pooled_daemon_serves_interleaved_clients_bit_identically() {
    let (building, dir) = stage_golden("pool");
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let daemon = Daemon::new(
        DaemonConfig::new(RegistryConfig::new(&dir).assign_cache(64)).pool(CLIENTS + 2),
    );
    let server = std::thread::spawn(move || daemon.serve_tcp(&listener).unwrap());

    let all: Vec<usize> = (0..building.samples().len()).collect();

    // Sequential single-connection baseline first, then the same scans
    // again over interleaved concurrent clients — the second pass also
    // replays against a *warm* answer cache, which must be invisible.
    let sequential = assign_interleaved_baseline(&addr, &building, &all);
    let concurrent = assign_interleaved(&addr, &building, &all);
    assert_eq!(
        sequential, concurrent,
        "concurrent interleaving changed answers vs the sequential baseline"
    );
    assert_eq!(
        render(&building, &concurrent),
        golden_expected(),
        "pooled daemon diverged from tests/fixtures/golden_assign.jsonl"
    );

    let (mut reader, mut writer) = connect(&addr);
    roundtrip(&mut reader, &mut writer, r#"{"op":"shutdown"}"#);
    server.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// The sequential reference: one connection, scans in order.
fn assign_interleaved_baseline(
    addr: &str,
    building: &Building,
    indices: &[usize],
) -> Vec<(usize, usize)> {
    let (mut reader, mut writer) = connect(addr);
    indices
        .iter()
        .map(|&i| {
            let request = Json::obj([
                ("op", Json::Str("assign".into())),
                ("building", Json::Str(building.name().to_owned())),
                ("scan", building.samples()[i].to_json()),
            ])
            .to_string();
            let response = roundtrip(&mut reader, &mut writer, &request);
            assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response}");
            (i, response.get("floor").unwrap().as_usize().unwrap())
        })
        .collect()
}

#[test]
fn router_survives_shard_death_mid_run_bit_identically() {
    let (building, dir) = stage_golden("router");

    // Three shards over the same artifact directory.
    let mut shard_addrs = Vec::new();
    let mut shard_handles = Vec::new();
    for _ in 0..3 {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        shard_addrs.push(listener.local_addr().unwrap().to_string());
        let daemon = Daemon::new(DaemonConfig::new(RegistryConfig::new(&dir)).pool(CLIENTS + 2));
        shard_handles.push(Some(std::thread::spawn(move || {
            daemon.serve_tcp(&listener).unwrap();
        })));
    }

    let router = Arc::new(Router::new(
        RouterConfig::new(shard_addrs.clone())
            .replicas(2)
            .pool(CLIENTS + 2),
    ));
    let placement = router.route(building.name());
    assert_eq!(placement.len(), 2, "golden building has two replicas");
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let front = {
        let router = Arc::clone(&router);
        std::thread::spawn(move || router.serve_tcp(&listener).unwrap())
    };

    // Phase 1: first half of the golden scans, interleaved clients, all
    // replicas alive.
    let n = building.samples().len();
    let first_half: Vec<usize> = (0..n / 2).collect();
    let second_half: Vec<usize> = (n / 2..n).collect();
    let mut floors = assign_interleaved(&addr, &building, &first_half);

    // Kill the building's *primary* replica mid-run — direct shutdown to
    // that shard, then join its thread so its listener is fully gone and
    // the router must fail over to the surviving replica.
    let primary = placement[0];
    {
        let (mut reader, mut writer) = connect(&shard_addrs[primary]);
        let response = roundtrip(&mut reader, &mut writer, r#"{"op":"shutdown"}"#);
        assert_eq!(response.get("op").unwrap().as_str(), Some("shutdown"));
    }
    shard_handles[primary].take().unwrap().join().unwrap();

    // Phase 2: the rest of the scans; every answer now comes from the
    // surviving replica and must still match the fixture bit-for-bit.
    floors.extend(assign_interleaved(&addr, &building, &second_half));
    floors.sort_unstable();
    assert_eq!(
        render(&building, &floors),
        golden_expected(),
        "failover changed answers vs tests/fixtures/golden_assign.jsonl"
    );

    // The router observed the failover (phase 2 requests were answered
    // by a non-primary replica).
    let (mut reader, mut writer) = connect(&addr);
    let stats = roundtrip(&mut reader, &mut writer, r#"{"op":"stats"}"#);
    let failovers = stats
        .get("router")
        .and_then(|r| r.get("failovers"))
        .and_then(Json::as_usize)
        .unwrap_or(0);
    assert!(
        failovers >= second_half.len(),
        "expected every post-death request to fail over, saw {failovers}"
    );

    // Shutdown through the router broadcasts to the surviving shards.
    roundtrip(&mut reader, &mut writer, r#"{"op":"shutdown"}"#);
    front.join().unwrap();
    for handle in shard_handles.into_iter().flatten() {
        handle.join().unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}
