//! Property tests for fitted-model persistence and streaming inference.
//!
//! Three properties lock the artifact layer:
//!
//! 1. **Round-trip stability**: save → load → save is byte-identical
//!    (the JSON codec writes sorted keys and shortest-round-trip `f64`).
//! 2. **Serving equivalence**: a model that went through serialization
//!    assigns *exactly* the same floors (or the same typed error) as the
//!    in-memory model, for arbitrary scans mixing known and unknown MACs.
//! 3. **Index equivalence**: the VP-tree fast path behind `assign`
//!    matches the `assign_linear` reference scan bit-for-bit, on both
//!    the in-memory and the reloaded model.
//!
//! The model is fitted once and shared across cases; each case builds a
//! random scan from the vendored proptest shim's deterministic stream.

use std::sync::OnceLock;

use fis_one::{
    BuildingConfig, FisError, FisOne, FisOneConfig, FittedModel, MacAddr, RfGnnConfig, Rssi,
    SignalSample,
};
use proptest::prelude::*;

struct Shared {
    model: FittedModel,
    loaded: FittedModel,
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| {
        let building = BuildingConfig::new("prop", 3)
            .samples_per_floor(20)
            .aps_per_floor(12)
            .atrium_aps(0)
            .seed(77)
            .generate();
        let mut config = FisOneConfig::default().seed(5);
        config.gnn = RfGnnConfig::new(8)
            .epochs(3)
            .walks_per_node(2)
            .neighbor_samples(vec![5, 3])
            .seed(5);
        let model = FisOne::new(config)
            .fit(
                building.name(),
                building.samples(),
                building.floors(),
                building.bottom_anchor().expect("bottom surveyed"),
            )
            .expect("property-test building fits");
        let loaded =
            FittedModel::from_json_str(&model.to_json_string()).expect("round-trip parses");
        Shared { model, loaded }
    })
}

/// A scan whose readings pick MACs by index: indices below the vocabulary
/// size are known MACs, the rest map to addresses guaranteed unknown.
fn scan_from(picks: &[(usize, f64)]) -> SignalSample {
    let vocab = shared().model.macs();
    let mut builder = SignalSample::builder(0);
    for &(sel, dbm) in picks {
        let mac = if sel < vocab.len() {
            vocab[sel]
        } else {
            // High OUI prefix no synthetic generator produces.
            MacAddr::from_u64(0xFEED_0000_0000 + sel as u64)
        };
        builder = builder.reading(mac, Rssi::new(dbm).expect("in range"));
    }
    builder.build()
}

#[test]
fn save_load_save_is_byte_identical() {
    let s = shared();
    let first = s.model.to_json_string();
    assert_eq!(s.loaded.to_json_string(), first);
    // And a second hop stays fixed, so the artifact is a fixpoint.
    let again = FittedModel::from_json_str(&s.loaded.to_json_string()).unwrap();
    assert_eq!(again.to_json_string(), first);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn loaded_model_assigns_like_in_memory(
        picks in proptest::collection::vec((0usize..60, -100.0..-30.0f64), 1..6),
    ) {
        let s = shared();
        let scan = scan_from(&picks);
        match (s.model.assign(&scan), s.loaded.assign(&scan)) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(FisError::Inference(a)), Err(FisError::Inference(b))) => {
                prop_assert_eq!(a, b);
            }
            (a, b) => panic!("outcomes diverged: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn vp_tree_assign_matches_linear_reference(
        picks in proptest::collection::vec((0usize..60, -100.0..-30.0f64), 1..6),
    ) {
        let s = shared();
        let scan = scan_from(&picks);
        for model in [&s.model, &s.loaded] {
            match (model.assign(&scan), model.assign_linear(&scan)) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(FisError::Inference(a)), Err(FisError::Inference(b))) => {
                    prop_assert_eq!(a, b);
                }
                (a, b) => panic!("index vs scan outcomes diverged: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn known_macs_assign_within_floor_range(
        picks in proptest::collection::vec((0usize..30, -90.0..-35.0f64), 1..5),
    ) {
        let s = shared();
        // Vocabulary is comfortably larger than 30, so every pick is known.
        prop_assert!(s.model.macs().len() > 30);
        let scan = scan_from(&picks);
        let floor = s.model.assign(&scan).expect("known MACs must assign");
        prop_assert!(floor.index() < s.model.floors());
        // Determinism: the same scan assigns identically when re-queried.
        prop_assert_eq!(s.model.assign(&scan).unwrap(), floor);
    }

    #[test]
    fn unknown_macs_only_is_typed_error(
        picks in proptest::collection::vec((1_000usize..1_060, -90.0..-35.0f64), 1..5),
    ) {
        let s = shared();
        let scan = scan_from(&picks);
        let err = s.model.assign(&scan).expect_err("nothing known to attach to");
        prop_assert!(matches!(err, FisError::Inference(_)), "{}", err);
    }
}
