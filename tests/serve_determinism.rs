//! Daemon-level determinism against the golden fixtures.
//!
//! The acceptance criterion of the serving daemon: golden scans served
//! through `fis-serve` — any thread count, with a forced eviction +
//! reload in the middle — produce responses **bit-identical** to
//! [`FittedModel::assign`] and to the checked-in
//! `tests/fixtures/golden_assign.jsonl`. The daemon is pure plumbing on
//! top of the PR 2 contract; this test fails if it ever adds
//! nondeterminism (batch-order effects, thread-count effects, eviction
//! history effects).

use std::path::PathBuf;

use fis_one::types::io;
use fis_one::types::json::{Json, ToJson};
use fis_one::{Daemon, DaemonConfig, FisOne, FisOneConfig, RegistryConfig};

const GOLDEN_SEED: u64 = 7;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Serves every golden scan through one `assign_batch` request and
/// returns the floor per scan, asserting zero failures.
fn serve_batch(daemon: &Daemon, building: &str, scans: &[fis_one::SignalSample]) -> Vec<usize> {
    let line = Json::obj([
        ("op", Json::Str("assign_batch".into())),
        ("building", Json::Str(building.to_owned())),
        (
            "scans",
            Json::Arr(scans.iter().map(|s| s.to_json()).collect()),
        ),
    ])
    .to_string();
    let (response, shutdown) = daemon.handle_line(&line);
    assert!(!shutdown);
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response}");
    assert_eq!(response.get("failures").unwrap().as_usize(), Some(0));
    response
        .get("results")
        .unwrap()
        .as_arr()
        .unwrap()
        .iter()
        .map(|row| row.get("floor").unwrap().as_usize().unwrap())
        .collect()
}

#[test]
fn daemon_matches_golden_assign_fixture_across_threads_and_evictions() {
    let corpus = io::load_jsonl(fixture("golden_corpus.jsonl")).expect("golden corpus");
    let building = &corpus.buildings()[0];

    // Fit the golden model and stage it as a registry artifact.
    let model = FisOne::new(FisOneConfig::default().seed(GOLDEN_SEED))
        .fit(
            building.name(),
            building.samples(),
            building.floors(),
            building.bottom_anchor().expect("bottom surveyed"),
        )
        .expect("golden building fits");
    let dir = std::env::temp_dir().join(format!("fis_serve_golden_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    model
        .save(dir.join(format!("{}.json", building.name())))
        .unwrap();

    // Direct, in-process reference: one assign per scan.
    let direct: Vec<usize> = building
        .samples()
        .iter()
        .map(|s| model.assign(s).expect("training scan assigns").index())
        .collect();

    // Serve at several thread budgets; force an evict + reload between
    // two batches on the same daemon. Every variant must agree bit-wise.
    let mut served = Vec::new();
    for threads in [1usize, 2, 4] {
        let daemon = Daemon::new(DaemonConfig::new(RegistryConfig::new(&dir)).threads(threads));
        let first = serve_batch(&daemon, building.name(), building.samples());
        let (response, _) = daemon.handle_line(&format!(
            r#"{{"op":"evict","building":"{}"}}"#,
            building.name()
        ));
        assert_eq!(response.get("evicted"), Some(&Json::Bool(true)));
        let second = serve_batch(&daemon, building.name(), building.samples());
        assert_eq!(
            first, second,
            "eviction history changed responses at {threads} threads"
        );
        assert!(daemon.registry().stats().evictions >= 1);
        served.push((threads, first));
    }
    for (threads, floors) in &served {
        assert_eq!(
            floors, &direct,
            "daemon at {threads} threads disagrees with FittedModel::assign"
        );
    }

    // And bit-identical to the checked-in fixture rendering.
    let rendered: String = served[0]
        .1
        .iter()
        .enumerate()
        .map(|(i, floor)| {
            let line = Json::obj([
                ("building", Json::Str(building.name().to_owned())),
                ("floor", Json::Num(*floor as f64)),
                ("id", Json::Num(i as f64)),
            ]);
            format!("{line}\n")
        })
        .collect();
    let expected = std::fs::read_to_string(fixture("golden_assign.jsonl"))
        .expect("golden assign fixture (run FIS_REGEN_GOLDEN=1 via golden_fixtures once)");
    assert_eq!(
        rendered, expected,
        "daemon-served labels are not bit-identical to tests/fixtures/golden_assign.jsonl"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The answer cache is an invisible optimization: for any capacity —
/// disabled, pathologically small, or larger than the working set — and
/// any interleaving of warm batches, evictions, and hot reloads, a
/// cache-enabled daemon serves bit-identically to a cache-off one.
#[test]
fn answer_cache_never_changes_answers() {
    let corpus = io::load_jsonl(fixture("golden_corpus.jsonl")).expect("golden corpus");
    let building = &corpus.buildings()[0];
    let model = FisOne::new(FisOneConfig::default().seed(GOLDEN_SEED))
        .fit(
            building.name(),
            building.samples(),
            building.floors(),
            building.bottom_anchor().expect("bottom surveyed"),
        )
        .expect("golden building fits");
    let dir = std::env::temp_dir().join(format!("fis_serve_cache_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let artifact = dir.join(format!("{}.json", building.name()));
    model.save(&artifact).unwrap();

    // Cache-off reference: one direct assign per scan.
    let reference: Vec<usize> = building
        .samples()
        .iter()
        .map(|s| model.assign(s).expect("training scan assigns").index())
        .collect();

    for (round, capacity) in [0usize, 1, 1 << 14].into_iter().enumerate() {
        let daemon = Daemon::new(DaemonConfig::new(
            RegistryConfig::new(&dir).assign_cache(capacity),
        ));
        let mut rounds = Vec::new();
        rounds.push((
            "cold",
            serve_batch(&daemon, building.name(), building.samples()),
        ));
        rounds.push((
            "warm",
            serve_batch(&daemon, building.name(), building.samples()),
        ));

        // Evict drops the model *and* its cache; answers must not move.
        let (response, _) = daemon.handle_line(&format!(
            r#"{{"op":"evict","building":"{}"}}"#,
            building.name()
        ));
        assert_eq!(response.get("evicted"), Some(&Json::Bool(true)));
        rounds.push((
            "post-evict",
            serve_batch(&daemon, building.name(), building.samples()),
        ));

        // Hot reload: republish the artifact with extra trailing
        // newlines — different bytes, same parsed model — so the
        // registry's content hash sees a change and replaces the entry
        // (and its cache) on the next fetch. A byte-identical rewrite
        // would be recognized by hash and *keep* the entry; the
        // registry's own tests cover that path. The newline count is
        // per-round: the artifact persists across capacity rounds, so a
        // fixed count would reproduce the exact bytes the next round
        // cold-loaded and read as unchanged.
        std::thread::sleep(std::time::Duration::from_millis(25));
        model.save(&artifact).unwrap();
        let mut text = std::fs::read_to_string(&artifact).unwrap();
        text.push_str(&"\n".repeat(round + 1));
        std::fs::write(&artifact, text).unwrap();
        rounds.push((
            "post-reload",
            serve_batch(&daemon, building.name(), building.samples()),
        ));
        rounds.push((
            "rewarmed",
            serve_batch(&daemon, building.name(), building.samples()),
        ));
        assert!(
            daemon.registry().stats().reloads >= 1,
            "reload did not trigger"
        );

        for (label, floors) in &rounds {
            assert_eq!(
                floors, &reference,
                "{label} batch at cache capacity {capacity} diverged from cache-off answers"
            );
        }

        // The counters prove the cache actually engaged (or stayed out
        // of the way when disabled).
        let counters = daemon.registry().stats().assign_cache;
        if capacity == 0 {
            assert_eq!(counters.lookups(), 0, "disabled cache saw lookups");
        } else {
            assert!(counters.hits > 0, "capacity {capacity} never hit");
            assert!(counters.misses > 0, "cold batches must miss");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
