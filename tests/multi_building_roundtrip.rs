//! Regression tests for multi-building `generate` semantics.
//!
//! `generate --buildings N` emits buildings `NAME-0` … `NAME-{N-1}`,
//! each reseeded with `seed + i` — the CLI help and README used to
//! describe single-building output only. These tests lock the actual
//! contract: the real binary writes N distinct buildings, and an
//! N-building corpus round-trips through `FisEngine::fit_corpus` into a
//! registry directory the serving daemon can tenant by building id.

use std::collections::HashSet;
use std::process::Command;

use fis_one::core::{EngineConfig, FisEngine};
use fis_one::types::io;
use fis_one::{FisOneConfig, ModelRegistry, RegistryConfig};

fn quick_engine(seed: u64) -> FisEngine {
    FisEngine::new(EngineConfig::default().pipeline(FisOneConfig::quick(seed)))
}

#[test]
fn generate_buildings_flag_emits_distinct_reseeded_buildings() {
    let dir = std::env::temp_dir().join(format!("fis_gen_multi_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let corpus_path = dir.join("multi.jsonl");
    let status = Command::new(env!("CARGO_BIN_EXE_fis-one"))
        .args([
            "generate",
            "--floors",
            "3",
            "--samples",
            "10",
            "--seed",
            "9",
            "--buildings",
            "3",
            "--name",
            "rt",
            "--out",
            corpus_path.to_str().unwrap(),
        ])
        .status()
        .expect("run fis-one generate");
    assert!(status.success());

    let corpus = io::load_jsonl(&corpus_path).unwrap();
    assert_eq!(corpus.len(), 3, "one building per --buildings count");
    let names: Vec<&str> = corpus.buildings().iter().map(|b| b.name()).collect();
    assert_eq!(names, ["rt-0", "rt-1", "rt-2"], "documented naming scheme");
    // Per-building reseeding: the corpora must actually differ.
    let fingerprints: HashSet<String> = corpus
        .buildings()
        .iter()
        .map(|b| {
            b.samples()
                .iter()
                .flat_map(|s| s.iter())
                .map(|(mac, rssi)| format!("{mac}:{rssi}"))
                .collect::<Vec<_>>()
                .join(",")
        })
        .collect();
    assert_eq!(fingerprints.len(), 3, "reseeded buildings are distinct");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn n_building_corpus_roundtrips_through_fit_corpus_and_registry() {
    let dir = std::env::temp_dir().join(format!("fis_rt_registry_{}", std::process::id()));
    let models = dir.join("models");
    std::fs::create_dir_all(&models).unwrap();
    let corpus_path = dir.join("corpus.jsonl");
    let status = Command::new(env!("CARGO_BIN_EXE_fis-one"))
        .args([
            "generate",
            "--floors",
            "3",
            "--samples",
            "12",
            "--seed",
            "21",
            "--buildings",
            "3",
            "--name",
            "site",
            "--out",
            corpus_path.to_str().unwrap(),
        ])
        .status()
        .expect("run fis-one generate");
    assert!(status.success());
    let corpus = io::load_jsonl(&corpus_path).unwrap();

    // fit_corpus → one artifact per building, named by building id.
    let fit = quick_engine(21).fit_corpus(&corpus);
    assert_eq!(fit.successes().count(), 3, "every building fits");
    for (run, model) in fit.successes() {
        assert_eq!(model.building(), run.building);
        model
            .save(models.join(format!("{}.json", run.building)))
            .unwrap();
    }

    // Registry loads each tenant under its own id and serves its scans.
    let mut registry = ModelRegistry::new(RegistryConfig::new(&models));
    let mut seen = HashSet::new();
    for building in corpus.buildings() {
        let (model, _) = registry.get(building.name()).expect("tenant loads");
        assert_eq!(model.building(), building.name());
        assert!(seen.insert(model.building().to_owned()), "distinct ids");
        let floor = model
            .assign(&building.samples()[0])
            .expect("tenant serves its own scans");
        assert!(floor.index() < building.floors());
    }
    assert_eq!(seen.len(), 3);
    assert_eq!(registry.stats().misses, 3);
    assert_eq!(registry.stats().hits, 0);
    std::fs::remove_dir_all(&dir).ok();
}
