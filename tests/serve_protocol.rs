//! Protocol failure-injection suite for the serving daemon.
//!
//! Everything hostile a client (or an operator's filesystem) can do —
//! truncated and malformed frames, unknown buildings, artifacts deleted
//! between load and request, eviction mid-stream, oversized batches —
//! must produce a **typed JSON error response** and leave the daemon
//! serving; nothing here may crash or close the loop early. The last
//! test drives the real `fis-one serve` binary in pipe mode and asserts
//! a clean exit.

use std::path::PathBuf;

use fis_one::types::json::{Json, ToJson};
use fis_one::{
    Building, BuildingConfig, Daemon, DaemonConfig, FisOne, FisOneConfig, RegistryConfig,
};

fn quick_fit(name: &str, seed: u64) -> (Building, fis_one::FittedModel) {
    let b = BuildingConfig::new(name, 3)
        .samples_per_floor(15)
        .aps_per_floor(8)
        .atrium_aps(0)
        .seed(seed)
        .generate();
    let model = FisOne::new(FisOneConfig::quick(seed))
        .fit(
            b.name(),
            b.samples(),
            b.floors(),
            b.bottom_anchor().unwrap(),
        )
        .unwrap();
    (b, model)
}

fn model_dir(tag: &str, models: &[(&str, u64)]) -> (PathBuf, Vec<Building>) {
    let dir = std::env::temp_dir().join(format!("fis_proto_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut buildings = Vec::new();
    for &(name, seed) in models {
        let (b, model) = quick_fit(name, seed);
        model.save(dir.join(format!("{name}.json"))).unwrap();
        buildings.push(b);
    }
    (dir, buildings)
}

fn error_kind(response: &Json) -> Option<&str> {
    assert_eq!(
        response.get("ok"),
        Some(&Json::Bool(false)),
        "expected an error response, got {response}"
    );
    response.get("error")?.get("kind")?.as_str()
}

#[test]
fn malformed_and_truncated_frames_are_typed_and_nonfatal() {
    let (dir, buildings) = model_dir("frames", &[("ok", 31)]);
    let daemon = Daemon::new(DaemonConfig::new(RegistryConfig::new(&dir)));
    for bad in [
        "not json at all",
        "{\"op\": \"assign\", \"building\": \"ok\", \"scan\"", // truncated mid-frame
        "[1,2,3]",
        "{\"building\": \"ok\"}",                     // no op
        "{\"op\": 7}",                                // non-string op
        "{\"op\": \"warp\"}",                         // unknown op
        "{\"op\": \"assign\", \"building\": \"ok\"}", // missing scan
        "{\"op\": \"assign_batch\", \"building\": \"ok\", \"scans\": 3}",
        "{\"op\": \"assign\", \"building\": \"ok\", \"scan\": {\"id\": \"x\", \"readings\": []}}",
        "{\"op\": \"load\", \"building\": \"\"}",
        "{\"op\": \"load\", \"building\": \"../../etc/passwd\"}",
    ] {
        let (response, shutdown) = daemon.handle_line(bad);
        assert!(!shutdown, "bad frame must not stop the daemon: {bad}");
        assert_eq!(error_kind(&response), Some("protocol"), "frame: {bad}");
    }
    // The daemon still serves real work afterwards.
    let line = Json::obj([
        ("op", Json::Str("assign".into())),
        ("building", Json::Str("ok".into())),
        ("scan", buildings[0].samples()[0].to_json()),
    ])
    .to_string();
    let (response, _) = daemon.handle_line(&line);
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_building_is_typed() {
    let (dir, _) = model_dir("unknown", &[("real", 32)]);
    let daemon = Daemon::new(DaemonConfig::new(RegistryConfig::new(&dir)));
    let (response, _) = daemon.handle_line(r#"{"op":"load","building":"phantom"}"#);
    assert_eq!(error_kind(&response), Some("unknown_building"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_artifact_is_model_error() {
    let (dir, _) = model_dir("corrupt", &[]);
    std::fs::write(
        dir.join("rotten.json"),
        "{\"schema\": \"fis-one/fitted-model\"",
    )
    .unwrap();
    let daemon = Daemon::new(DaemonConfig::new(RegistryConfig::new(&dir)));
    let (response, _) = daemon.handle_line(r#"{"op":"load","building":"rotten"}"#);
    assert_eq!(error_kind(&response), Some("model"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn artifact_deleted_between_load_and_request() {
    let (dir, buildings) = model_dir("deleted", &[("vanish", 33)]);
    let daemon = Daemon::new(DaemonConfig::new(RegistryConfig::new(&dir)));
    let (response, _) = daemon.handle_line(r#"{"op":"load","building":"vanish"}"#);
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
    std::fs::remove_file(dir.join("vanish.json")).unwrap();
    let line = Json::obj([
        ("op", Json::Str("assign".into())),
        ("building", Json::Str("vanish".into())),
        ("scan", buildings[0].samples()[0].to_json()),
    ])
    .to_string();
    let (response, _) = daemon.handle_line(&line);
    assert_eq!(error_kind(&response), Some("model"));
    // Once dropped, the building is simply unknown — still typed.
    let (response, _) = daemon.handle_line(&line);
    assert_eq!(error_kind(&response), Some("unknown_building"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn eviction_mid_stream_reloads_with_identical_answers() {
    let (dir, buildings) = model_dir("evict", &[("steady", 34)]);
    let daemon = Daemon::new(DaemonConfig::new(RegistryConfig::new(&dir)));
    let assign = |daemon: &Daemon, scan: &fis_one::SignalSample| -> usize {
        let line = Json::obj([
            ("op", Json::Str("assign".into())),
            ("building", Json::Str("steady".into())),
            ("scan", scan.to_json()),
        ])
        .to_string();
        let (response, _) = daemon.handle_line(&line);
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)), "{response}");
        response.get("floor").unwrap().as_usize().unwrap()
    };
    let before: Vec<usize> = buildings[0]
        .samples()
        .iter()
        .take(8)
        .map(|s| assign(&daemon, s))
        .collect();
    let (response, _) = daemon.handle_line(r#"{"op":"evict","building":"steady"}"#);
    assert_eq!(response.get("evicted"), Some(&Json::Bool(true)));
    let after: Vec<usize> = buildings[0]
        .samples()
        .iter()
        .take(8)
        .map(|s| assign(&daemon, s))
        .collect();
    assert_eq!(before, after, "evict + reload changed assignments");
    assert!(daemon.registry().stats().evictions >= 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn oversized_batch_is_capacity_error_and_counted_batches_pass() {
    let (dir, buildings) = model_dir("cap", &[("cap", 35)]);
    let daemon = Daemon::new(DaemonConfig::new(RegistryConfig::new(&dir)).max_batch(4));
    let batch = |n: usize| {
        Json::obj([
            ("op", Json::Str("assign_batch".into())),
            ("building", Json::Str("cap".into())),
            (
                "scans",
                Json::Arr(
                    buildings[0]
                        .samples()
                        .iter()
                        .take(n)
                        .map(|s| s.to_json())
                        .collect(),
                ),
            ),
        ])
        .to_string()
    };
    let (response, _) = daemon.handle_line(&batch(5));
    assert_eq!(error_kind(&response), Some("capacity"));
    let (response, _) = daemon.handle_line(&batch(4));
    assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(response.get("count").unwrap().as_usize(), Some(4));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lru_eviction_under_pressure_keeps_serving_all_tenants() {
    let (dir, buildings) = model_dir("lru", &[("t0", 36), ("t1", 37), ("t2", 38)]);
    let daemon = Daemon::new(DaemonConfig::new(RegistryConfig::new(&dir).max_models(2)));
    // Rotate through more tenants than the cache holds, twice.
    for round in 0..2 {
        for b in &buildings {
            let line = Json::obj([
                ("op", Json::Str("assign".into())),
                ("building", Json::Str(b.name().to_owned())),
                ("scan", b.samples()[round].to_json()),
            ])
            .to_string();
            let (response, _) = daemon.handle_line(&line);
            assert_eq!(
                response.get("ok"),
                Some(&Json::Bool(true)),
                "tenant {} round {round}: {response}",
                b.name()
            );
        }
    }
    let stats = daemon.registry().stats();
    assert!(stats.evictions >= 1, "cache pressure must evict");
    assert!(daemon.registry().len() <= 2);
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression: a non-UTF-8 byte on the wire used to surface as an
/// `InvalidData` error from `read_line`, killing the connection with no
/// response. Lines are now read as raw bytes and decoded lossily, so
/// the frame fails JSON parsing and earns a typed `protocol` error —
/// and the connection keeps serving.
#[test]
fn non_utf8_bytes_get_a_protocol_error_and_the_connection_survives() {
    let (dir, buildings) = model_dir("utf8", &[("raw", 40)]);
    let daemon = Daemon::new(DaemonConfig::new(RegistryConfig::new(&dir)));
    let assign = Json::obj([
        ("op", Json::Str("assign".into())),
        ("building", Json::Str("raw".into())),
        ("scan", buildings[0].samples()[0].to_json()),
    ])
    .to_string();
    // 0xFF/0xFE can never appear in UTF-8; splice them mid-stream.
    let mut script: Vec<u8> = Vec::new();
    script.extend_from_slice(b"\xff\xfe\xfd\n");
    script.extend_from_slice(b"{\"op\":\"stats\"\xff}\n");
    script.extend_from_slice(assign.as_bytes());
    script.push(b'\n');
    let mut out = Vec::new();
    let shutdown = daemon
        .serve_connection(&script[..], &mut out)
        .expect("invalid UTF-8 must not be a transport error");
    assert!(!shutdown);
    let lines: Vec<Json> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| Json::parse(l).unwrap())
        .collect();
    assert_eq!(lines.len(), 3, "every line answered, none dropped");
    assert_eq!(error_kind(&lines[0]), Some("protocol"));
    assert_eq!(error_kind(&lines[1]), Some("protocol"));
    assert_eq!(
        lines[2].get("ok"),
        Some(&Json::Bool(true)),
        "the connection still serves real work after garbage bytes"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Regression: scan ids ride the wire as JSON numbers (f64), so ids at
/// or past 2^53 lose integer precision and could collide across a
/// batch. Out-of-range ids must die at parse time as typed `protocol`
/// errors — never get truncated into someone else's id.
#[test]
fn out_of_range_scan_ids_are_protocol_errors() {
    let (dir, _) = model_dir("ids", &[("ids", 41)]);
    let daemon = Daemon::new(DaemonConfig::new(RegistryConfig::new(&dir)));
    for bad in [
        // Just past u32: the full id space the daemon accepts.
        r#"{"op":"assign","building":"ids","scan":{"id":4294967296,"readings":[]}}"#,
        // Past 2^53: would silently collide with 2^53 as an f64.
        r#"{"op":"assign","building":"ids","scan":{"id":9007199254740993,"readings":[]}}"#,
        r#"{"op":"assign","building":"ids","scan":{"id":-1,"readings":[]}}"#,
        r#"{"op":"assign","building":"ids","scan":{"id":1.25,"readings":[]}}"#,
        r#"{"op":"assign_batch","building":"ids","scans":[{"id":18446744073709551616,"readings":[]}]}"#,
    ] {
        let (response, shutdown) = daemon.handle_line(bad);
        assert!(!shutdown);
        assert_eq!(error_kind(&response), Some("protocol"), "frame: {bad}");
        let message = response
            .get("error")
            .unwrap()
            .get("message")
            .unwrap()
            .as_str()
            .unwrap();
        assert!(
            message.contains("0..=4294967295"),
            "error names the accepted range: {message}"
        );
    }
    // The boundary id itself is accepted (fails later only because the
    // scan is empty, which is an inference error, not a protocol one).
    let (response, _) = daemon
        .handle_line(r#"{"op":"assign","building":"ids","scan":{"id":4294967295,"readings":[]}}"#);
    assert_ne!(error_kind(&response), Some("protocol"));
    std::fs::remove_dir_all(&dir).ok();
}

/// Pipe mode through the real binary: a 1-building script ending in
/// `shutdown` must answer every line and exit 0.
#[test]
fn serve_binary_pipe_mode_clean_shutdown() {
    use std::io::Write;
    use std::process::{Command, Stdio};

    let (dir, buildings) = model_dir("binary", &[("bin", 39)]);
    let scan = buildings[0].samples()[0].to_json();
    let script = format!(
        "{}\n{}\nnot json\n{}\n",
        Json::obj([
            ("op", Json::Str("load".into())),
            ("building", Json::Str("bin".into())),
        ]),
        Json::obj([
            ("op", Json::Str("assign".into())),
            ("building", Json::Str("bin".into())),
            ("scan", scan),
        ]),
        r#"{"op":"shutdown"}"#,
    );
    let mut child = Command::new(env!("CARGO_BIN_EXE_fis-one"))
        .args(["serve", "--models", dir.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn fis-one serve");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(script.as_bytes())
        .unwrap();
    let output = child.wait_with_output().unwrap();
    assert!(output.status.success(), "daemon exit: {:?}", output.status);
    let stdout = String::from_utf8(output.stdout).unwrap();
    let lines: Vec<Json> = stdout
        .lines()
        .map(|l| Json::parse(l).expect("response line parses"))
        .collect();
    assert_eq!(lines.len(), 4, "stdout: {stdout}");
    assert_eq!(lines[0].get("ok"), Some(&Json::Bool(true)));
    assert_eq!(lines[1].get("ok"), Some(&Json::Bool(true)));
    assert_eq!(lines[2].get("ok"), Some(&Json::Bool(false)));
    assert_eq!(lines[3].get("op").unwrap().as_str(), Some("shutdown"));
    std::fs::remove_dir_all(&dir).ok();
}
