//! End-to-end observability acceptance: one routed request must be
//! reconstructable across router → shard → registry → assign from the
//! JSONL journal alone, and turning observability on (stderr logging via
//! `FIS_LOG`/`set_level`, or the `--trace` journal) must never change a
//! single answer byte — neither serving responses nor fit artifacts.
//!
//! The journal and the log-level override are process-global, so every
//! assertion lives in ONE `#[test]` with sequential phases; this file is
//! its own test binary, so nothing else races the global state.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};

use fis_one::obs::{self, journal, Level};
use fis_one::types::json::{Json, ToJson};
use fis_one::{
    Building, BuildingConfig, Daemon, DaemonConfig, FisOne, FisOneConfig, RegistryConfig, Router,
    RouterConfig,
};

const SEED: u64 = 11;

/// Sends every scan of `building` through one connection to `addr` and
/// returns the *raw* response lines — byte-identity is the contract, so
/// no parsing happens on the primary path.
fn assign_raw(addr: &str, building: &Building) -> Vec<String> {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    (0..building.samples().len())
        .map(|i| {
            let request = Json::obj([
                ("op", Json::Str("assign".into())),
                ("building", Json::Str(building.name().to_owned())),
                ("scan", building.samples()[i].to_json()),
                ("id", Json::Num(i as f64)),
            ])
            .to_string();
            writeln!(writer, "{request}").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(
                line.contains("\"ok\":true"),
                "scan {i} failed: {}",
                line.trim()
            );
            line
        })
        .collect()
}

fn shutdown(addr: &str) {
    let mut stream = TcpStream::connect(addr).unwrap();
    writeln!(stream, r#"{{"op":"shutdown"}}"#).unwrap();
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).unwrap();
}

fn field<'a>(event: &'a Json, key: &str) -> Option<&'a str> {
    event.get(key).and_then(Json::as_str)
}

/// Parses a journal and keeps only well-formed event objects.
fn events_of(jsonl: &str) -> Vec<Json> {
    jsonl
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| Json::parse(l).expect("journal line parses"))
        .collect()
}

fn find<'a>(events: &'a [Json], component: &str, name: &str) -> Vec<&'a Json> {
    events
        .iter()
        .filter(|e| field(e, "component") == Some(component) && field(e, "event") == Some(name))
        .collect()
}

fn fit_model(building: &Building) -> fis_one::FittedModel {
    FisOne::new(FisOneConfig::quick(SEED))
        .fit(
            building.name(),
            building.samples(),
            building.floors(),
            building.bottom_anchor().expect("bottom floor surveyed"),
        )
        .expect("synthetic building fits")
}

#[test]
fn journals_reconstruct_routed_requests_and_answers_stay_bit_identical() {
    let building = BuildingConfig::new("obs", 3)
        .samples_per_floor(12)
        .seed(SEED)
        .generate();
    let dir = std::env::temp_dir().join(format!("fis_obs_trace_{}", std::process::id()));
    let models = dir.join("models");
    std::fs::create_dir_all(&models).unwrap();

    // ---- Phase 1: fit artifacts are byte-identical with the journal
    // off vs on, and the journal carries the pipeline stage spans. ----
    obs::set_level(None); // force the stderr sink off regardless of env
    let quiet = fit_model(&building);
    journal::start(journal::DEFAULT_JOURNAL_CAPACITY);
    let journaled = fit_model(&building);
    let fit_journal = journal::stop().expect("journal was recording").to_jsonl();

    let off_path = dir.join("fit-off.json");
    let on_path = dir.join("fit-on.json");
    quiet.save(&off_path).unwrap();
    journaled.save(&on_path).unwrap();
    assert_eq!(
        std::fs::read(&off_path).unwrap(),
        std::fs::read(&on_path).unwrap(),
        "journal recording changed the fit artifact bytes"
    );

    let fit_events = events_of(&fit_journal);
    let fit_span = find(&fit_events, "pipeline", "fit");
    assert_eq!(fit_span.len(), 1, "exactly one fit span in the journal");
    let fit_trace = field(fit_span[0], "trace").expect("fit span carries a trace id");
    let fit_id = field(fit_span[0], "span").expect("fit span has an id");
    for stage in [
        "graph_build",
        "gnn_train",
        "cluster",
        "floor_order",
        "vptree_build",
    ] {
        let spans = find(&fit_events, "pipeline", stage);
        assert!(!spans.is_empty(), "fit journal is missing stage `{stage}`");
        for span in &spans {
            assert_eq!(
                field(span, "trace"),
                Some(fit_trace),
                "stage `{stage}` is outside the fit trace"
            );
            assert!(span.get("dur_ns").is_some(), "stage `{stage}` is untimed");
        }
    }
    // Top-level stages nest directly under the fit span.
    for stage in ["graph_build", "cluster"] {
        assert_eq!(
            field(find(&fit_events, "pipeline", stage)[0], "parent"),
            Some(fit_id),
            "stage `{stage}` does not parent under the fit span"
        );
    }

    // ---- Phase 2: serve the model through router → shard and replay
    // the same scans with observability off, stderr-on, journal-on. ----
    quiet
        .save(models.join(format!("{}.json", building.name())))
        .unwrap();

    let shard_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let shard_addr = shard_listener.local_addr().unwrap().to_string();
    let daemon = Daemon::new(DaemonConfig::new(
        RegistryConfig::new(&models).assign_cache(64),
    ));
    let shard = std::thread::spawn(move || daemon.serve_tcp(&shard_listener).unwrap());

    let router = Router::new(RouterConfig::new(vec![shard_addr]).replicas(1));
    let front_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let front_addr = front_listener.local_addr().unwrap().to_string();
    let front = std::thread::spawn(move || router.serve_tcp(&front_listener).unwrap());

    // Leg 1: everything off — the reference answers.
    let reference = assign_raw(&front_addr, &building);
    // Leg 2: stderr logging at debug (trace context is injected into
    // forwarded frames) — answers must not move.
    obs::set_level(Some(Level::Debug));
    let logged = assign_raw(&front_addr, &building);
    // Leg 3: stderr off again, journal recording — answers must not move.
    obs::set_level(None);
    journal::start(journal::DEFAULT_JOURNAL_CAPACITY);
    let journaled_legs = assign_raw(&front_addr, &building);
    let serve_journal = journal::stop().expect("journal was recording").to_jsonl();

    assert_eq!(
        reference, logged,
        "FIS_LOG-style stderr logging changed serving answers"
    );
    assert_eq!(
        reference, journaled_legs,
        "journal recording changed serving answers"
    );
    // The trace context rides the *request* envelope only; responses
    // must never echo it.
    for line in reference.iter().chain(&logged).chain(&journaled_legs) {
        assert!(
            !line.contains("\"trace\""),
            "response leaked the trace field: {}",
            line.trim()
        );
    }

    // ---- Phase 3: reconstruct one routed request end-to-end from the
    // journal: router dispatch → shard request → assign → registry. ----
    let events = events_of(&serve_journal);
    let dispatches: Vec<&Json> = find(&events, "router", "dispatch")
        .into_iter()
        .filter(|e| field(e, "op") == Some("assign"))
        .collect();
    assert_eq!(
        dispatches.len(),
        building.samples().len(),
        "one dispatch span per routed assign"
    );
    for dispatch in &dispatches {
        let trace = field(dispatch, "trace").expect("dispatch has a trace id");
        let dispatch_span = field(dispatch, "span").expect("dispatch has a span id");
        let request = events
            .iter()
            .find(|e| {
                field(e, "component") == Some("daemon")
                    && field(e, "event") == Some("request")
                    && field(e, "trace") == Some(trace)
                    && field(e, "parent") == Some(dispatch_span)
            })
            .unwrap_or_else(|| panic!("no shard request span adopted dispatch trace {trace}"));
        let request_span = field(request, "span").unwrap();
        let assign = events
            .iter()
            .find(|e| {
                field(e, "component") == Some("daemon")
                    && field(e, "event") == Some("assign")
                    && field(e, "trace") == Some(trace)
                    && field(e, "parent") == Some(request_span)
            })
            .unwrap_or_else(|| panic!("no assign span under request for trace {trace}"));
        assert!(assign.get("dur_ns").is_some(), "assign span is untimed");
        // The registry is consulted inside the assign span (artifact
        // load on the first request, answer-cache lookups after), and
        // its events inherit the same trace.
        let registry_hop = events
            .iter()
            .any(|e| field(e, "component") == Some("registry") && field(e, "trace") == Some(trace));
        assert!(registry_hop, "no registry event joined trace {trace}");
    }

    // The summarizer digests the same journal into per-stage rows.
    let stages = obs::summarize(&serve_journal);
    for key in [("router", "dispatch"), ("daemon", "assign")] {
        assert!(
            stages.contains_key(&(key.0.to_owned(), key.1.to_owned())),
            "summary is missing stage {key:?}"
        );
    }

    shutdown(&front_addr);
    front.join().unwrap();
    shard.join().unwrap();
    obs::level::clear_level();
    std::fs::remove_dir_all(&dir).ok();
}
