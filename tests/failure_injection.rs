//! Failure-injection tests: malformed and degenerate inputs must produce
//! errors (or well-defined degraded behaviour), never panics.

use fis_one::{
    BuildingConfig, FisError, FisOne, FisOneConfig, FloorId, LabeledAnchor, MacAddr, RfGnnConfig,
    Rssi, SignalSample,
};

fn quick() -> FisOne {
    FisOne::new(FisOneConfig {
        gnn: RfGnnConfig::new(8).epochs(2).walks_per_node(2),
        ..FisOneConfig::default()
    })
}

fn anchor0() -> LabeledAnchor {
    LabeledAnchor {
        sample: fis_one::types::SampleId(0),
        floor: FloorId::BOTTOM,
    }
}

#[test]
fn empty_sample_set_is_graph_error() {
    let err = quick().identify(&[], 2, anchor0()).unwrap_err();
    assert!(matches!(err, FisError::Clustering(_) | FisError::Graph(_)));
}

#[test]
fn all_empty_scans_fail_cleanly() {
    let samples: Vec<SignalSample> = (0..10).map(|i| SignalSample::builder(i).build()).collect();
    let err = quick().identify(&samples, 2, anchor0()).unwrap_err();
    assert!(matches!(err, FisError::Training(_)), "{err}");
}

#[test]
fn single_shared_mac_everywhere_does_not_panic() {
    // Degenerate: every scan hears exactly the same single AP.
    let samples: Vec<SignalSample> = (0..12)
        .map(|i| {
            SignalSample::builder(i)
                .reading(MacAddr::from_u64(1), Rssi::new(-50.0).unwrap())
                .build()
        })
        .collect();
    // Must return *something* without panicking; quality is undefined.
    let _ = quick().identify(&samples, 2, anchor0());
}

#[test]
fn all_identical_rss_does_not_panic() {
    let samples: Vec<SignalSample> = (0..12)
        .map(|i| {
            SignalSample::builder(i)
                .readings((1..=4).map(|m| (MacAddr::from_u64(m), Rssi::new(-60.0).unwrap())))
                .build()
        })
        .collect();
    let _ = quick().identify(&samples, 3, anchor0());
}

#[test]
fn disconnected_components_do_not_panic() {
    // Two floors that share zero MACs (fully disconnected bipartite
    // components) — the walk/negative-sampling machinery must cope.
    let mut samples = Vec::new();
    for i in 0..8u32 {
        let mac = if i < 4 { 1 } else { 100 };
        samples.push(
            SignalSample::builder(i)
                .reading(MacAddr::from_u64(mac), Rssi::new(-50.0).unwrap())
                .build(),
        );
    }
    let result = quick().identify(&samples, 2, anchor0());
    if let Ok(pred) = result {
        assert_eq!(pred.labels().len(), 8);
    }
}

#[test]
fn more_floors_than_samples_rejected() {
    let samples: Vec<SignalSample> = (0..3)
        .map(|i| {
            SignalSample::builder(i)
                .reading(MacAddr::from_u64(1), Rssi::new(-50.0).unwrap())
                .build()
        })
        .collect();
    let err = quick().identify(&samples, 10, anchor0()).unwrap_err();
    assert!(matches!(err, FisError::Clustering(_)));
}

#[test]
fn building_filtering_drops_thin_floors() {
    // A building where one floor has almost no data: the paper's
    // preprocessing (min 100 samples/floor, min 3 floors) must drop it.
    let b = BuildingConfig::new("thin", 4)
        .samples_per_floor(120)
        .seed(9)
        .generate();
    // Simulate thin top floor by filtering at a threshold above its count.
    let filtered = b.filtered(121, 3);
    assert!(filtered.is_none(), "all floors are below 121 samples");
    let kept = b.filtered(100, 3).expect("all floors have 120 samples");
    assert_eq!(kept.floors(), 4);
}

#[test]
fn duplicate_macs_within_scan_are_collapsed() {
    let s = SignalSample::builder(0)
        .reading(MacAddr::from_u64(1), Rssi::new(-80.0).unwrap())
        .reading(MacAddr::from_u64(1), Rssi::new(-40.0).unwrap())
        .build();
    assert_eq!(s.len(), 1);
    assert_eq!(
        s.rssi_of(MacAddr::from_u64(1)),
        Some(Rssi::new(-40.0).unwrap())
    );
}
