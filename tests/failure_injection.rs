//! Failure-injection tests: malformed and degenerate inputs must produce
//! errors (or well-defined degraded behaviour), never panics.

use std::sync::OnceLock;

use fis_one::types::json::Json;
use fis_one::{
    BuildingConfig, FisError, FisOne, FisOneConfig, FittedModel, FloorId, LabeledAnchor, MacAddr,
    RfGnnConfig, Rssi, SignalSample,
};

fn quick() -> FisOne {
    FisOne::new(FisOneConfig {
        gnn: RfGnnConfig::new(8).epochs(2).walks_per_node(2),
        ..FisOneConfig::default()
    })
}

/// One quick fitted model shared by the load/assign failure tests.
fn fitted() -> &'static FittedModel {
    static MODEL: OnceLock<FittedModel> = OnceLock::new();
    MODEL.get_or_init(|| {
        let b = BuildingConfig::new("fi", 3)
            .samples_per_floor(15)
            .aps_per_floor(6)
            .atrium_aps(0)
            .seed(31)
            .generate();
        quick()
            .fit(
                b.name(),
                b.samples(),
                b.floors(),
                b.bottom_anchor().unwrap(),
            )
            .expect("failure-injection building fits")
    })
}

/// Reserializes the model with one top-level field replaced.
fn tampered(key: &str, value: Json) -> String {
    let mut json = Json::parse(&fitted().to_json_string()).unwrap();
    match &mut json {
        Json::Obj(map) => {
            map.insert(key.to_owned(), value);
        }
        _ => unreachable!("artifact is an object"),
    }
    json.to_string()
}

fn anchor0() -> LabeledAnchor {
    LabeledAnchor {
        sample: fis_one::types::SampleId(0),
        floor: FloorId::BOTTOM,
    }
}

#[test]
fn empty_sample_set_is_graph_error() {
    let err = quick().identify(&[], 2, anchor0()).unwrap_err();
    assert!(matches!(err, FisError::Clustering(_) | FisError::Graph(_)));
}

#[test]
fn all_empty_scans_fail_cleanly() {
    let samples: Vec<SignalSample> = (0..10).map(|i| SignalSample::builder(i).build()).collect();
    let err = quick().identify(&samples, 2, anchor0()).unwrap_err();
    assert!(matches!(err, FisError::Training(_)), "{err}");
}

#[test]
fn single_shared_mac_everywhere_does_not_panic() {
    // Degenerate: every scan hears exactly the same single AP.
    let samples: Vec<SignalSample> = (0..12)
        .map(|i| {
            SignalSample::builder(i)
                .reading(MacAddr::from_u64(1), Rssi::new(-50.0).unwrap())
                .build()
        })
        .collect();
    // Must return *something* without panicking; quality is undefined.
    let _ = quick().identify(&samples, 2, anchor0());
}

#[test]
fn all_identical_rss_does_not_panic() {
    let samples: Vec<SignalSample> = (0..12)
        .map(|i| {
            SignalSample::builder(i)
                .readings((1..=4).map(|m| (MacAddr::from_u64(m), Rssi::new(-60.0).unwrap())))
                .build()
        })
        .collect();
    let _ = quick().identify(&samples, 3, anchor0());
}

#[test]
fn disconnected_components_do_not_panic() {
    // Two floors that share zero MACs (fully disconnected bipartite
    // components) — the walk/negative-sampling machinery must cope.
    let mut samples = Vec::new();
    for i in 0..8u32 {
        let mac = if i < 4 { 1 } else { 100 };
        samples.push(
            SignalSample::builder(i)
                .reading(MacAddr::from_u64(mac), Rssi::new(-50.0).unwrap())
                .build(),
        );
    }
    let result = quick().identify(&samples, 2, anchor0());
    if let Ok(pred) = result {
        assert_eq!(pred.labels().len(), 8);
    }
}

#[test]
fn more_floors_than_samples_rejected() {
    let samples: Vec<SignalSample> = (0..3)
        .map(|i| {
            SignalSample::builder(i)
                .reading(MacAddr::from_u64(1), Rssi::new(-50.0).unwrap())
                .build()
        })
        .collect();
    let err = quick().identify(&samples, 10, anchor0()).unwrap_err();
    assert!(matches!(err, FisError::Clustering(_)));
}

#[test]
fn building_filtering_drops_thin_floors() {
    // A building where one floor has almost no data: the paper's
    // preprocessing (min 100 samples/floor, min 3 floors) must drop it.
    let b = BuildingConfig::new("thin", 4)
        .samples_per_floor(120)
        .seed(9)
        .generate();
    // Simulate thin top floor by filtering at a threshold above its count.
    let filtered = b.filtered(121, 3);
    assert!(filtered.is_none(), "all floors are below 121 samples");
    let kept = b.filtered(100, 3).expect("all floors have 120 samples");
    assert_eq!(kept.floors(), 4);
}

#[test]
fn corrupt_model_json_is_typed_error() {
    for garbage in [
        "",
        "not json",
        "{\"schema\":",
        "[1,2,3]",
        "{\"schema\":\"wrong\"}",
    ] {
        let err = FittedModel::from_json_str(garbage).unwrap_err();
        assert!(matches!(err, FisError::Model(_)), "{garbage:?} -> {err}");
    }
}

#[test]
fn truncated_model_artifact_is_typed_error() {
    let text = fitted().to_json_string();
    // Cut mid-document at several depths; every prefix must fail cleanly.
    for cut in [text.len() / 8, text.len() / 2, text.len() - 2] {
        let err = FittedModel::from_json_str(&text[..cut]).unwrap_err();
        assert!(matches!(err, FisError::Model(_)), "cut at {cut} -> {err}");
    }
}

#[test]
fn model_floor_count_mismatch_is_typed_error() {
    // The artifact claims more floors than it carries centroids/orderings
    // for — e.g. hand-edited, or fitted against a different corpus shape.
    let err = FittedModel::from_json_str(&tampered(
        "floors",
        Json::Num((fitted().floors() + 1) as f64),
    ))
    .unwrap_err();
    assert!(matches!(err, FisError::Model(_)), "{err}");
    assert!(err.to_string().contains("floor-count mismatch"), "{err}");
}

#[test]
fn model_schema_version_mismatch_is_typed_error() {
    let err = FittedModel::from_json_str(&tampered("version", Json::Num(99.0))).unwrap_err();
    assert!(matches!(err, FisError::Model(_)), "{err}");
}

#[test]
fn model_assignment_mismatch_is_typed_error() {
    // Assignment array shorter than the training corpus.
    let err = FittedModel::from_json_str(&tampered("assignment", Json::Arr(vec![Json::Num(0.0)])))
        .unwrap_err();
    assert!(matches!(err, FisError::Model(_)), "{err}");
    // Assignment referencing a cluster beyond the floor count.
    let bad: Vec<Json> = (0..fitted().samples().len())
        .map(|_| Json::Num(99.0))
        .collect();
    let err = FittedModel::from_json_str(&tampered("assignment", Json::Arr(bad))).unwrap_err();
    assert!(matches!(err, FisError::Model(_)), "{err}");
}

#[test]
fn model_mac_vocabulary_mismatch_is_typed_error() {
    // Drop one MAC from the vocabulary: it no longer matches the graph
    // rebuilt from the training scans.
    let mut macs: Vec<Json> = fitted()
        .macs()
        .iter()
        .map(|m| Json::Str(m.to_string()))
        .collect();
    macs.pop();
    let err = FittedModel::from_json_str(&tampered("macs", Json::Arr(macs))).unwrap_err();
    assert!(matches!(err, FisError::Model(_)), "{err}");
    assert!(err.to_string().contains("vocabulary"), "{err}");
}

/// The f32-quantized (schema v3) twin of `fitted()`.
fn fitted_f32() -> &'static FittedModel {
    static MODEL: OnceLock<FittedModel> = OnceLock::new();
    MODEL.get_or_init(|| fitted().quantize_f32().expect("unextended model quantizes"))
}

/// Reserializes the v3 artifact with one top-level field replaced.
fn tampered_v3(key: &str, value: Json) -> String {
    let mut json = Json::parse(&fitted_f32().to_json_string()).unwrap();
    match &mut json {
        Json::Obj(map) => {
            map.insert(key.to_owned(), value);
        }
        _ => unreachable!("artifact is an object"),
    }
    json.to_string()
}

#[test]
fn truncated_v3_artifact_is_typed_error() {
    let text = fitted_f32().to_json_string();
    for cut in [text.len() / 8, text.len() / 2, text.len() - 2] {
        let err = FittedModel::from_json_str(&text[..cut]).unwrap_err();
        assert!(matches!(err, FisError::Model(_)), "cut at {cut} -> {err}");
    }
}

#[test]
fn v3_artifact_with_extension_field_is_typed_error() {
    // v3 is extension-free by definition; a stray extension object must
    // be rejected, not silently dropped.
    let err = FittedModel::from_json_str(&tampered_v3(
        "extension",
        Json::obj([
            ("samples", Json::Arr(vec![])),
            ("assignment", Json::Arr(vec![])),
            ("references", Json::Arr(vec![])),
        ]),
    ))
    .unwrap_err();
    assert!(matches!(err, FisError::Model(_)), "{err}");
    assert!(err.to_string().contains("extension"), "{err}");
}

#[test]
fn v3_reading_mac_index_out_of_range_is_typed_error() {
    // Point one compact reading past the MAC vocabulary.
    let mut json = Json::parse(&fitted_f32().to_json_string()).unwrap();
    let n_macs = fitted_f32().macs().len();
    let samples = match &mut json {
        Json::Obj(map) => map.get_mut("samples").unwrap(),
        _ => unreachable!(),
    };
    let first_nonempty = match samples {
        Json::Arr(rows) => rows
            .iter_mut()
            .find_map(|s| match s {
                Json::Obj(m) => match m.get_mut("readings") {
                    Some(Json::Arr(r)) if !r.is_empty() => Some(r),
                    _ => None,
                },
                _ => None,
            })
            .expect("some scan has readings"),
        _ => unreachable!(),
    };
    first_nonempty[0] = Json::Arr(vec![Json::Num(n_macs as f64), Json::Num(-50.0)]);
    let err = FittedModel::from_json_str(&json.to_string()).unwrap_err();
    assert!(matches!(err, FisError::Model(_)), "{err}");
    assert!(err.to_string().contains("MAC index"), "{err}");
}

#[test]
fn v3_malformed_readings_are_typed_errors() {
    // A v1-style ["aa:bb:..", rssi] pair inside a v3 artifact: the MAC
    // string is not a vocabulary index, so the parse must fail cleanly.
    let mac = fitted_f32().macs()[0];
    let bad_samples = Json::Arr(vec![Json::obj([
        ("id", Json::Num(0.0)),
        (
            "readings",
            Json::Arr(vec![Json::Arr(vec![
                Json::Str(mac.to_string()),
                Json::Num(-50.0),
            ])]),
        ),
    ])]);
    let err = FittedModel::from_json_str(&tampered_v3("samples", bad_samples)).unwrap_err();
    assert!(matches!(err, FisError::Model(_)), "{err}");
    // An out-of-range RSSI must be rejected by the same typed path.
    let bad_rssi = Json::Arr(vec![Json::obj([
        ("id", Json::Num(0.0)),
        (
            "readings",
            Json::Arr(vec![Json::Arr(vec![Json::Num(0.0), Json::Num(17.0)])]),
        ),
    ])]);
    let err = FittedModel::from_json_str(&tampered_v3("samples", bad_rssi)).unwrap_err();
    assert!(matches!(err, FisError::Model(_)), "{err}");
}

#[test]
fn load_missing_model_file_is_typed_error() {
    let err = FittedModel::load("/nonexistent/definitely/missing-model.json").unwrap_err();
    assert!(matches!(err, FisError::Model(_)), "{err}");
}

#[test]
fn unknown_mac_only_scans_never_panic_the_stream() {
    let model = fitted();
    let alien = SignalSample::builder(0)
        .reading(
            MacAddr::from_u64(0xFEED_0000_0001),
            Rssi::new(-45.0).unwrap(),
        )
        .build();
    let silent = SignalSample::builder(1).build();
    let known = model.samples()[0].clone().with_id(2);
    let results = model.assign_stream(&[alien, silent, known], 2);
    assert!(matches!(&results[0], Err(FisError::Inference(_))));
    assert!(matches!(&results[1], Err(FisError::Inference(_))));
    assert!(results[2].is_ok(), "known scan must still assign");
}

#[test]
fn duplicate_macs_within_scan_are_collapsed() {
    let s = SignalSample::builder(0)
        .reading(MacAddr::from_u64(1), Rssi::new(-80.0).unwrap())
        .reading(MacAddr::from_u64(1), Rssi::new(-40.0).unwrap())
        .build();
    assert_eq!(s.len(), 1);
    assert_eq!(
        s.rssi_of(MacAddr::from_u64(1)),
        Some(Rssi::new(-40.0).unwrap())
    );
}
