//! Golden-fixture regression tests for the serving path.
//!
//! `tests/fixtures/` holds a tiny checked-in corpus plus the expected
//! `identify` and `assign` outputs as JSONL. The test asserts today's
//! outputs are **bit-identical** to the fixtures, locking the workspace
//! determinism contract (fixed seed ⇒ identical predictions for any
//! thread count) across future refactors: any change that shifts a
//! single bit of arithmetic in the graph, GNN, clustering, indexing, or
//! inference layers fails loudly here.
//!
//! To regenerate after an *intentional* contract change:
//!
//! ```bash
//! FIS_REGEN_GOLDEN=1 cargo test --test golden_fixtures
//! ```
//!
//! and commit the refreshed fixtures together with the change.

use std::fs;
use std::path::PathBuf;

use fis_one::core::{EngineConfig, FisEngine};
use fis_one::types::io;
use fis_one::types::json::Json;
use fis_one::{BuildingConfig, Dataset, FisOne, FisOneConfig, FloorId};

const GOLDEN_SEED: u64 = 7;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn regen() -> bool {
    std::env::var_os("FIS_REGEN_GOLDEN").is_some()
}

fn golden_config() -> FisOneConfig {
    FisOneConfig::default().seed(GOLDEN_SEED)
}

/// The corpus behind the fixtures. Only used when regenerating; the
/// checked-in JSONL file is the source of truth otherwise.
fn generate_corpus() -> Dataset {
    let building = BuildingConfig::new("golden", 3)
        .samples_per_floor(25)
        .aps_per_floor(8)
        .atrium_aps(0)
        .seed(42)
        .generate();
    Dataset::new("golden", vec![building])
}

/// One JSONL line per sample: `{"building":...,"floor":N,"id":I}`.
fn render_labels(building: &str, labels: &[FloorId]) -> String {
    labels
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let line = Json::obj([
                ("building", Json::Str(building.to_owned())),
                ("floor", Json::Num(f.index() as f64)),
                ("id", Json::Num(i as f64)),
            ]);
            format!("{line}\n")
        })
        .collect()
}

fn check_or_write(path: PathBuf, actual: &str, what: &str) {
    if regen() {
        fs::write(&path, actual).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        eprintln!("regenerated {}", path.display());
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "reading {} ({e}); run FIS_REGEN_GOLDEN=1 once",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "{what} output is not bit-identical to {}; if the determinism \
         contract changed intentionally, regenerate with FIS_REGEN_GOLDEN=1",
        path.display()
    );
}

#[test]
fn serving_path_matches_golden_fixtures() {
    let corpus_path = fixture("golden_corpus.jsonl");
    if regen() {
        io::save_jsonl(&generate_corpus(), &corpus_path).expect("write corpus fixture");
    }
    let corpus = io::load_jsonl(&corpus_path).expect("load corpus fixture");
    assert_eq!(corpus.len(), 1, "fixture corpus holds one building");
    let building = &corpus.buildings()[0];

    // identify path (through the batch engine, like the CLI).
    let engine = FisEngine::new(EngineConfig::default().pipeline(golden_config()));
    let report = engine.identify_corpus(&corpus);
    let outcome = report.runs[0]
        .outcome
        .as_ref()
        .expect("golden building identifies");
    let identify_lines = render_labels(building.name(), outcome.prediction.labels());
    check_or_write(
        fixture("golden_identify.jsonl"),
        &identify_lines,
        "identify",
    );

    // fit + assign path; must reproduce identify exactly (the acceptance
    // criterion of the serving subsystem), for any thread count.
    let model = FisOne::new(golden_config())
        .fit(
            building.name(),
            building.samples(),
            building.floors(),
            building.bottom_anchor().expect("bottom surveyed"),
        )
        .expect("golden building fits");
    let serial: Vec<FloorId> = model
        .assign_stream(building.samples(), 1)
        .into_iter()
        .map(|r| r.expect("training scans assign"))
        .collect();
    let parallel: Vec<FloorId> = model
        .assign_stream(building.samples(), 4)
        .into_iter()
        .map(|r| r.expect("training scans assign"))
        .collect();
    assert_eq!(serial, parallel, "assign depends on the thread count");

    // The VP-tree fast path must agree with the linear-scan reference
    // on every golden scan — the index is exact, not approximate.
    let linear: Vec<FloorId> = building
        .samples()
        .iter()
        .map(|s| model.assign_linear(s).expect("training scans assign"))
        .collect();
    assert_eq!(
        linear, serial,
        "VP-tree assign diverged from the linear-scan reference"
    );

    let assign_lines = render_labels(building.name(), &serial);
    check_or_write(fixture("golden_assign.jsonl"), &assign_lines, "assign");
    assert_eq!(
        assign_lines, identify_lines,
        "fit + assign must reproduce identify's labels exactly on the training corpus"
    );

    // A model that went through disk serves the same labels.
    let dir = std::env::temp_dir().join("fis_golden_fixtures");
    fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("golden_model.json");
    model.save(&model_path).expect("save model");
    let loaded = fis_one::FittedModel::load(&model_path).expect("load model");
    let reloaded: Vec<FloorId> = loaded
        .assign_stream(building.samples(), 0)
        .into_iter()
        .map(|r| r.expect("training scans assign"))
        .collect();
    assert_eq!(reloaded, serial, "a reloaded model serves different labels");
    fs::remove_file(&model_path).ok();
}
