#!/usr/bin/env bash
# Serving-daemon smoke test (CI): start `fis-one serve` in pipe mode,
# feed a 3-building request script (with an eviction mid-stream), diff
# the daemon's answers against the `assign` CLI per building, and assert
# a clean shutdown. Mirrors the `serve_*` integration tests from a cold
# operator's perspective: only the shipped binary and the wire protocol.
set -euo pipefail

bin=${BIN:-target/release/fis-one}
router_bin=${ROUTER_BIN:-target/release/fis-router}
work=$(mktemp -d)
pids=""
trap 'kill $pids 2>/dev/null; rm -rf "$work"' EXIT

"$bin" generate --floors 3 --samples 30 --seed 5 --buildings 3 \
    --name smoke --out "$work/corpus.jsonl"
mkdir "$work/models"
for b in smoke-0 smoke-1 smoke-2; do
  "$bin" fit --corpus "$work/corpus.jsonl" --building "$b" \
      --out "$work/models/$b.json" 2>/dev/null
  # Reference answers from the one-shot CLI path ("sID Fn" lines).
  "$bin" assign --model "$work/models/$b.json" --scans "$work/corpus.jsonl" \
      --building "$b" 2>/dev/null | grep -v '^#' > "$work/expect-$b.txt"
done

# Build the request script straight from the corpus JSONL.
python3 - "$work" <<'EOF'
import json, sys
work = sys.argv[1]
lines = open(f"{work}/corpus.jsonl").read().splitlines()
buildings = [json.loads(l) for l in lines[1:]]
assert len(buildings) == 3
with open(f"{work}/script.ndjson", "w") as out:
    emit = lambda req: out.write(json.dumps(req) + "\n")
    for b in buildings:
        emit({"op": "load", "building": b["name"]})
    # Force one eviction mid-stream: the reload must not change answers.
    emit({"op": "evict", "building": buildings[0]["name"]})
    for b in buildings:
        emit({
            "op": "assign_batch",
            "building": b["name"],
            "scans": [{"id": s["id"], "readings": s["readings"]} for s in b["samples"]],
        })
    emit({"op": "stats"})
    emit({"op": "shutdown"})
EOF

"$bin" serve --models "$work/models" \
    < "$work/script.ndjson" > "$work/responses.ndjson"
echo "serve smoke: daemon exited cleanly after shutdown"

# Check every response and render served floors as "sID Fn" lines.
python3 - "$work" <<'EOF'
import json, sys
work = sys.argv[1]
responses = [json.loads(l) for l in open(f"{work}/responses.ndjson")]
bad = [r for r in responses if not r.get("ok")]
assert not bad, f"error responses: {bad}"
assert responses[-1]["op"] == "shutdown"
(stats,) = [r for r in responses if r["op"] == "stats"]
registry = stats["stats"]["registry"]
assert registry["evictions"] >= 1, f"eviction never happened: {registry}"
assert registry["misses"] >= 4, f"expected 3 loads + 1 reload-after-evict: {registry}"
for r in responses:
    if r["op"] == "assign_batch":
        assert r["failures"] == 0, r
        with open(f"{work}/served-{r['building']}.txt", "w") as out:
            for row in r["results"]:
                out.write(f"s{row['scan_id']} F{row['floor'] + 1}\n")
EOF

for b in smoke-0 smoke-1 smoke-2; do
  diff "$work/expect-$b.txt" "$work/served-$b.txt"
done
echo "serve smoke OK: daemon answers are bit-identical to the assign CLI for 3 buildings"

# Second pass with the answer cache on: replay the same script (each
# assign_batch appears twice, so the repeat is served from the cache)
# and diff every batch bit-wise against the same CLI expectations.
python3 - "$work" <<'EOF'
import json, sys
work = sys.argv[1]
lines = [json.loads(l) for l in open(f"{work}/script.ndjson")]
with open(f"{work}/script_cached.ndjson", "w") as out:
    for req in lines:
        if req["op"] == "shutdown":
            break
        out.write(json.dumps(req) + "\n")
        if req["op"] == "assign_batch":
            out.write(json.dumps(req) + "\n")
    out.write(json.dumps({"op": "stats"}) + "\n")
    out.write(json.dumps({"op": "shutdown"}) + "\n")
EOF

"$bin" serve --models "$work/models" --assign-cache 4096 \
    < "$work/script_cached.ndjson" > "$work/responses_cached.ndjson"

python3 - "$work" <<'EOF'
import json, sys
work = sys.argv[1]
responses = [json.loads(l) for l in open(f"{work}/responses_cached.ndjson")]
bad = [r for r in responses if not r.get("ok")]
assert not bad, f"error responses: {bad}"
cache = [r for r in responses if r["op"] == "stats"][-1]["stats"]["assign_cache"]
assert cache["hits"] > 0, f"cached replay never hit: {cache}"
assert cache["misses"] > 0, f"cold batches must miss: {cache}"
seen = {}
for r in responses:
    if r["op"] == "assign_batch":
        assert r["failures"] == 0, r
        n = seen.get(r["building"], 0)
        seen[r["building"]] = n + 1
        suffix = "" if n == 0 else f".{n}"
        with open(f"{work}/cached-{r['building']}{suffix}.txt", "w") as out:
            for row in r["results"]:
                out.write(f"s{row['scan_id']} F{row['floor'] + 1}\n")
assert all(n == 2 for n in seen.values()), seen
EOF

for b in smoke-0 smoke-1 smoke-2; do
  diff "$work/expect-$b.txt" "$work/cached-$b.txt"
  diff "$work/expect-$b.txt" "$work/cached-$b.1.txt"
done
echo "serve smoke OK: cache-enabled daemon answers are bit-identical to the cache-off CLI"

# Third pass: two TCP shards behind fis-router, driven by 4 concurrent
# client connections at once. Every routed, interleaved answer must
# still be bit-identical to the one-shot `assign` CLI.
wait_listen_addr() {
  for _ in $(seq 1 100); do
    addr=$(sed -n 's/.*listening on \([0-9.]*:[0-9]*\).*/\1/p' "$1" | head -n 1)
    if [ -n "$addr" ]; then echo "$addr"; return 0; fi
    sleep 0.1
  done
  echo "timed out waiting for a listen address in $1" >&2
  return 1
}

"$bin" serve --models "$work/models" --tcp 127.0.0.1:0 --pool 8 \
    2> "$work/shard0.log" &
pids="$pids $!"
"$bin" serve --models "$work/models" --tcp 127.0.0.1:0 --pool 8 \
    2> "$work/shard1.log" &
pids="$pids $!"
shard0=$(wait_listen_addr "$work/shard0.log")
shard1=$(wait_listen_addr "$work/shard1.log")
"$router_bin" --listen 127.0.0.1:0 --shards "$shard0,$shard1" \
    --replicas 2 --pool 8 2> "$work/router.log" &
pids="$pids $!"
router_addr=$(wait_listen_addr "$work/router.log")
echo "serve smoke: router on $router_addr fronting $shard0 + $shard1"

python3 - "$work" "$router_addr" <<'EOF'
import json, socket, sys, threading
work, addr = sys.argv[1], sys.argv[2]
host, port = addr.rsplit(":", 1)
lines = open(f"{work}/corpus.jsonl").read().splitlines()
buildings = [json.loads(l) for l in lines[1:]]
requests = []
for b in buildings:
    for s in b["samples"]:
        requests.append((b["name"], s["id"], {
            "op": "assign", "building": b["name"],
            "scan": {"id": s["id"], "readings": s["readings"]},
            "id": len(requests),
        }))
CONNS = 4
results, lock, errors = {}, threading.Lock(), []
def client(c):
    try:
        sock = socket.create_connection((host, int(port)))
        f = sock.makefile("rw")
        for i in range(c, len(requests), CONNS):
            name, sid, req = requests[i]
            f.write(json.dumps(req) + "\n"); f.flush()
            resp = json.loads(f.readline())
            assert resp.get("ok") and resp["id"] == req["id"], resp
            with lock:
                results[(name, sid)] = resp["floor"]
        sock.close()
    except Exception as e:  # surface thread failures to the main thread
        errors.append(f"connection {c}: {e!r}")
threads = [threading.Thread(target=client, args=(c,)) for c in range(CONNS)]
for t in threads: t.start()
for t in threads: t.join()
assert not errors, errors
assert len(results) == len(requests)
for b in buildings:
    with open(f"{work}/router-{b['name']}.txt", "w") as out:
        for s in b["samples"]:
            out.write(f"s{s['id']} F{results[(b['name'], s['id'])] + 1}\n")
sock = socket.create_connection((host, int(port)))
f = sock.makefile("rw")
f.write(json.dumps({"op": "stats"}) + "\n"); f.flush()
stats = json.loads(f.readline())
assert stats.get("ok"), stats
assert stats["router"]["unavailable"] == 0, stats["router"]
f.write(json.dumps({"op": "shutdown"}) + "\n"); f.flush()
assert json.loads(f.readline())["op"] == "shutdown"
sock.close()
EOF

wait $pids
pids=""
for b in smoke-0 smoke-1 smoke-2; do
  diff "$work/expect-$b.txt" "$work/router-$b.txt"
done
echo "serve smoke OK: 4 concurrent connections through the sharded router are bit-identical to the assign CLI"

# Fourth pass: mid-stream online extension + atomic hot-swap (protocol
# v2). The daemon's `extend` must publish an artifact byte-identical to
# the offline `fis-one extend` CLI on the same inputs, and every
# old-vocabulary answer must be bit-identical before and after the swap.
mkdir "$work/models_ext"
cp "$work/models/"*.json "$work/models_ext/"
# Same seed + floors as smoke-0's survey => same AP vocabulary, so the
# fresh scans are absorbable by the frozen base model.
"$bin" generate --floors 3 --samples 12 --seed 5 --name smoke-0 \
    --out "$work/ext.jsonl"
"$bin" extend --model "$work/models/smoke-0.json" --scans "$work/ext.jsonl" \
    --out "$work/ref-extended.json" 2>/dev/null

python3 - "$work" <<'EOF'
import json, sys
work = sys.argv[1]
corpus = [json.loads(l) for l in open(f"{work}/corpus.jsonl").read().splitlines()[1:]]
(smoke0,) = [b for b in corpus if b["name"] == "smoke-0"]
ext = [json.loads(l) for l in open(f"{work}/ext.jsonl").read().splitlines()[1:]]
scans = lambda b: [{"id": s["id"], "readings": s["readings"]} for s in b["samples"]]
with open(f"{work}/script_ext.ndjson", "w") as out:
    emit = lambda req: out.write(json.dumps(req) + "\n")
    emit({"op": "assign_batch", "building": "smoke-0", "scans": scans(smoke0)})
    emit({"v": 2, "op": "extend", "building": "smoke-0",
          "scans": [s for b in ext for s in scans(b)]})
    emit({"op": "assign_batch", "building": "smoke-0", "scans": scans(smoke0)})
    emit({"op": "stats"})
    emit({"op": "shutdown"})
EOF

"$bin" serve --models "$work/models_ext" \
    < "$work/script_ext.ndjson" > "$work/responses_ext.ndjson"

python3 - "$work" <<'EOF'
import json, sys
work = sys.argv[1]
responses = [json.loads(l) for l in open(f"{work}/responses_ext.ndjson")]
bad = [r for r in responses if not r.get("ok")]
assert not bad, f"error responses: {bad}"
(extend,) = [r for r in responses if r["op"] == "extend"]
assert extend["v"] == 2 and extend["appended"] > 0, extend
registry = [r for r in responses if r["op"] == "stats"][-1]["stats"]["registry"]
assert registry["evictions"] >= 1, f"hot-swap never evicted: {registry}"
batches = [r for r in responses if r["op"] == "assign_batch"]
assert len(batches) == 2
for label, r in zip(("pre", "post"), batches):
    assert r["failures"] == 0, r
    with open(f"{work}/swap-{label}.txt", "w") as out:
        for row in r["results"]:
            out.write(f"s{row['scan_id']} F{row['floor'] + 1}\n")
EOF

cmp "$work/models_ext/smoke-0.json" "$work/ref-extended.json"
diff "$work/expect-smoke-0.txt" "$work/swap-pre.txt"
diff "$work/expect-smoke-0.txt" "$work/swap-post.txt"
echo "serve smoke OK: mid-stream extend hot-swapped an artifact byte-identical to the CLI and kept old answers bit-identical"

# Fifth pass: the same router+shards topology with end-to-end tracing
# on (--trace journals on every tier). Answers must stay bit-identical
# to the tracing-off reference, the v2 `metrics` op must return
# parseable Prometheus text on both tiers, and one request's trace id
# must appear in the router journal *and* a shard journal — the
# cross-process reconstruction the journals exist for.
"$bin" serve --models "$work/models" --tcp 127.0.0.1:0 --pool 8 \
    --trace "$work/shard0-trace.jsonl" 2> "$work/tshard0.log" &
pids="$pids $!"
"$bin" serve --models "$work/models" --tcp 127.0.0.1:0 --pool 8 \
    --trace "$work/shard1-trace.jsonl" 2> "$work/tshard1.log" &
pids="$pids $!"
tshard0=$(wait_listen_addr "$work/tshard0.log")
tshard1=$(wait_listen_addr "$work/tshard1.log")
"$router_bin" --listen 127.0.0.1:0 --shards "$tshard0,$tshard1" \
    --replicas 2 --pool 8 --trace "$work/router-trace.jsonl" \
    2> "$work/trouter.log" &
pids="$pids $!"
trouter_addr=$(wait_listen_addr "$work/trouter.log")
echo "serve smoke: traced router on $trouter_addr fronting $tshard0 + $tshard1"

python3 - "$work" "$trouter_addr" "$tshard0" <<'EOF'
import json, socket, sys
work, addr, shard = sys.argv[1], sys.argv[2], sys.argv[3]

def dial(a):
    host, port = a.rsplit(":", 1)
    sock = socket.create_connection((host, int(port)))
    return sock, sock.makefile("rw")

def parses_as_prometheus(text, needle):
    assert needle in text, f"missing {needle}:\n{text}"
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name_labels, _, value = line.rpartition(" ")
        assert name_labels and name_labels[0].isalpha(), line
        float(value)  # every sample line ends in a number

lines = open(f"{work}/corpus.jsonl").read().splitlines()
buildings = [json.loads(l) for l in lines[1:]]
sock, f = dial(addr)
results = {}
for b in buildings:
    for s in b["samples"]:
        req = {"op": "assign", "building": b["name"],
               "scan": {"id": s["id"], "readings": s["readings"]}}
        f.write(json.dumps(req) + "\n"); f.flush()
        resp = json.loads(f.readline())
        assert resp.get("ok"), resp
        assert "trace" not in resp, f"trace must never be echoed: {resp}"
        results[(b["name"], s["id"])] = resp["floor"]
for b in buildings:
    with open(f"{work}/traced-{b['name']}.txt", "w") as out:
        for s in b["samples"]:
            out.write(f"s{s['id']} F{results[(b['name'], s['id'])] + 1}\n")

# metrics op on the router (its own counters)...
f.write(json.dumps({"v": 2, "op": "metrics"}) + "\n"); f.flush()
resp = json.loads(f.readline())
assert resp.get("ok") and resp["op"] == "metrics", resp
parses_as_prometheus(resp["metrics"], "fis_router_requests_total")
# ...and on a shard directly (latency histograms + registry gauges).
ssock, sf = dial(shard)
sf.write(json.dumps({"v": 2, "op": "metrics"}) + "\n"); sf.flush()
sresp = json.loads(sf.readline())
assert sresp.get("ok") and sresp["op"] == "metrics", sresp
parses_as_prometheus(sresp["metrics"], "fis_requests_total")
assert "fis_latency_ns_bucket" in sresp["metrics"], sresp["metrics"][:400]
ssock.close()

f.write(json.dumps({"op": "shutdown"}) + "\n"); f.flush()
assert json.loads(f.readline())["op"] == "shutdown"
sock.close()
EOF

wait $pids
pids=""
for b in smoke-0 smoke-1 smoke-2; do
  diff "$work/expect-$b.txt" "$work/traced-$b.txt"
done

python3 - "$work" <<'EOF'
import json, sys
work = sys.argv[1]
def traces(path):
    ids = set()
    for line in open(path):
        ids.add(json.loads(line).get("trace"))
    ids.discard(None)
    return ids
router = traces(f"{work}/router-trace.jsonl")
shards = traces(f"{work}/shard0-trace.jsonl") | traces(f"{work}/shard1-trace.jsonl")
assert router, "router journal recorded no traced events"
shared = router & shards
assert shared, f"no trace id crossed router -> shard ({len(router)} router, {len(shards)} shard ids)"
print(f"serve smoke: {len(shared)} trace id(s) reconstruct across router -> shard journals")
EOF

"$bin" trace summarize "$work/router-trace.jsonl" | head -n 5
echo "serve smoke OK: traced router answers are bit-identical to the tracing-off reference and both tiers expose parseable metrics"

# Sixth pass: the opt-in f32 serving artifact (schema v3). `fit --f32`
# must write an artifact no larger than 60% of the f64 one, the assign
# CLI over the f32 artifact must answer bit-identically to the f64
# reference on the training corpus, and the daemon must serve the v3
# artifacts transparently with the same answers.
mkdir "$work/models_f32"
for b in smoke-0 smoke-1 smoke-2; do
  "$bin" fit --corpus "$work/corpus.jsonl" --building "$b" --f32 \
      --out "$work/models_f32/$b.json" 2>/dev/null
  f64_bytes=$(wc -c < "$work/models/$b.json")
  f32_bytes=$(wc -c < "$work/models_f32/$b.json")
  if [ $((f32_bytes * 10)) -gt $((f64_bytes * 6)) ]; then
    echo "f32 artifact for $b is $f32_bytes bytes vs $f64_bytes f64 bytes (> 60%)" >&2
    exit 1
  fi
  "$bin" assign --model "$work/models_f32/$b.json" --scans "$work/corpus.jsonl" \
      --building "$b" 2>/dev/null | grep -v '^#' > "$work/f32-$b.txt"
  diff "$work/expect-$b.txt" "$work/f32-$b.txt"
done

"$bin" serve --models "$work/models_f32" \
    < "$work/script.ndjson" > "$work/responses_f32.ndjson"

python3 - "$work" <<'EOF'
import json, sys
work = sys.argv[1]
responses = [json.loads(l) for l in open(f"{work}/responses_f32.ndjson")]
bad = [r for r in responses if not r.get("ok")]
assert not bad, f"error responses: {bad}"
for r in responses:
    if r["op"] == "assign_batch":
        assert r["failures"] == 0, r
        with open(f"{work}/served-f32-{r['building']}.txt", "w") as out:
            for row in r["results"]:
                out.write(f"s{row['scan_id']} F{row['floor'] + 1}\n")
EOF

for b in smoke-0 smoke-1 smoke-2; do
  diff "$work/expect-$b.txt" "$work/served-f32-$b.txt"
done
echo "serve smoke OK: f32 artifacts are <= 60% of the f64 bytes and answer bit-identically to the f64 assign CLI, direct and served"
